//! Warm-start vs cold per-slot solve on the incremental matcher kernel.
//!
//! Two drift regimes through a single [`Matcher`] handle, each compared
//! against the same sequence with warm-start disabled (full rebuild every
//! slot):
//!
//! * **rotate** — the diurnal forecast window slides one slot per solve,
//!   re-pricing nearly every green bin. This is the warm path's worst
//!   case: the re-price sweep touches the whole graph, so expect parity
//!   with cold (the bench exists to catch it becoming *slower*).
//! * **calm** — the forecast holds and only one busy bin wobbles, the
//!   shape of intra-slot re-solves and forecast-error updates. Here the
//!   drift sweep touches a handful of arcs and the warm tiers pay off.

use std::cell::Cell;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_storage::ClusterSpec;
use gm_workload::JobId;
use greenmatch::matcher::{MatchInput, Matcher};
use greenmatch::policy::{BatteryView, JobView, PlanningModel, SiteView};

const HORIZON: usize = 24;

fn jobs(n: usize) -> Vec<JobView> {
    (0..n)
        .map(|i| JobView {
            id: JobId(i as u64),
            remaining_bytes: ((i % 37 + 1) as u64) << 32,
            deadline_slot: i % 30,
            critical: false,
        })
        .collect()
}

/// Forecast as seen at `slot`: the diurnal curve rotated so index 0 is the
/// slot being decided. Each slot therefore re-prices most green arcs.
fn forecast_at(slot: usize) -> Vec<f64> {
    (0..HORIZON).map(|t| if (8..18).contains(&((slot + t) % 24)) { 3_000.0 } else { 0.0 }).collect()
}

fn busy_at(slot: usize) -> Vec<f64> {
    (0..HORIZON).map(|t| 400.0 + ((slot + t) % 7) as f64 * 50.0).collect()
}

fn bench_kernel(c: &mut Criterion) {
    let model = PlanningModel::from_spec(&ClusterSpec::medium_dc());
    let mut group = c.benchmark_group("matcher_kernel");
    for n_jobs in [50usize, 500] {
        let js = jobs(n_jobs);
        let rotate: Vec<(usize, Vec<f64>, Vec<f64>)> =
            (0..24).map(|s| (s, forecast_at(s), busy_at(s))).collect();
        // Calm regime: the decision slot and forecast hold; one busy bin
        // wobbles between two values, so consecutive solves drift in a
        // single arc.
        let calm: Vec<(usize, Vec<f64>, Vec<f64>)> = (0..2)
            .map(|k| {
                let mut busy = busy_at(0);
                busy[HORIZON / 2] += k as f64 * 120.0;
                (0, forecast_at(0), busy)
            })
            .collect();
        for (regime, slots) in [("rotate", &rotate), ("calm", &calm)] {
            for warm in [true, false] {
                let label = format!("{regime}/{}", if warm { "warm" } else { "cold" });
                let mut matcher = Matcher::new();
                matcher.set_warm_start(warm);
                let cursor = Cell::new(0usize);
                group.bench_with_input(BenchmarkId::new(label, n_jobs), &n_jobs, |b, _| {
                    b.iter(|| {
                        let i = cursor.get();
                        cursor.set((i + 1) % slots.len());
                        let (slot, g, busy) = &slots[i];
                        let home = [SiteView::home(g, model, BatteryView::default())];
                        let input = MatchInput {
                            jobs: &js,
                            current_slot: *slot,
                            horizon: HORIZON,
                            sites: &home,
                            interactive_busy_secs: busy,
                            slot_secs: 3600.0,
                            brown_cost_per_slot: None,
                        };
                        black_box(matcher.solve(&input).bytes_now)
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
