//! Million-stream scaling proof for the interval-indexed workload kernel.
//!
//! Every group sweeps the interactive population over {1k, 10k, 100k, 1M}
//! sessions via [`WorkloadSpec::with_interactive_streams`], which re-spreads
//! the *same* aggregate request volume (the medium week's ≈ 7.1 M requests)
//! over more, proportionally quieter streams. That isolates exactly the
//! claim under test: per-slot cost must track the **live** stream set and
//! the request count, not the total population — so the curves should stay
//! near-flat (sub-linear in total streams) while a naive full-scan
//! generator would grow ×1000 from the first point to the last.
//!
//! - `mega_cursor_walk`: live-set maintenance alone — a [`LiveCursor`]
//!   advanced across the whole week, no synthesis. This is the pure
//!   activation-index cost (amortised O(total) for the week, O(live churn)
//!   per slot).
//! - `mega_slot_synthesis`: the simulation hot path — cursor advance plus
//!   per-stream keyed synthesis into a reused buffer, across one week.
//! - `mega_generate`: cold population build (oversample + thin + sort +
//!   block index), the one genuinely O(total) step, paid once per world.
//! - `mega_week_e2e`: the headline number — a full week-long
//!   single-policy run at 10⁶ streams, cold world each iteration (the
//!   acceptance bound is ≤ 60 s; see `BENCH_sweep.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_workload::trace::Workload;
use gm_workload::LiveCursor;
use greenmatch::config::ExperimentConfig;
use greenmatch::simulation::Simulation;

const STREAM_COUNTS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// The medium week re-spread over `streams` sessions (constant volume).
fn workload_at(streams: usize) -> (Workload, gm_sim::SlotClock, usize) {
    let cfg = ExperimentConfig::medium(42);
    let spec = cfg.workload.with_interactive_streams(streams);
    (Workload::generate(spec, cfg.seed), cfg.clock, cfg.slots)
}

fn bench_cursor_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("mega_cursor_walk");
    for streams in STREAM_COUNTS {
        let (workload, clock, slots) = workload_at(streams);
        let gen = workload.interactive();
        group.bench_with_input(BenchmarkId::new("streams", streams), &streams, |b, _| {
            b.iter(|| {
                let mut cursor = LiveCursor::new();
                let mut live_total = 0usize;
                for slot in 0..slots {
                    live_total += cursor.advance_to(gen, clock, slot).len();
                }
                black_box(live_total)
            })
        });
    }
    group.finish();
}

fn bench_slot_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mega_slot_synthesis");
    group.sample_size(10);
    for streams in STREAM_COUNTS {
        let (workload, clock, slots) = workload_at(streams);
        let gen = workload.interactive();
        group.bench_with_input(BenchmarkId::new("streams", streams), &streams, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut cursor = LiveCursor::new();
                let mut requests = 0usize;
                for slot in 0..slots {
                    let live: Vec<u32> = cursor.advance_to(gen, clock, slot).to_vec();
                    gen.synthesize_streams_into(clock, slot, &live, &mut out);
                    requests += out.len();
                }
                black_box(requests)
            })
        });
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("mega_generate");
    group.sample_size(10);
    for streams in STREAM_COUNTS {
        group.bench_with_input(BenchmarkId::new("streams", streams), &streams, |b, &n| {
            b.iter(|| black_box(workload_at(n).0.summary().streams))
        });
    }
    group.finish();
}

fn bench_week_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("mega_week_e2e");
    group.sample_size(10);
    group.bench_function("greenmatch_1m_cold", |b| {
        b.iter(|| {
            // Cold world every iteration: generation + synthesis + the
            // whole slot loop are all inside the measurement, matching
            // what `run_once --preset mega` pays.
            let cfg = ExperimentConfig::mega(42);
            let sim = Simulation::builder(&cfg).build().expect("mega config materialises");
            black_box(sim.run_to_end().brown_kwh)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cursor_walk, bench_slot_synthesis, bench_generate, bench_week_e2e);
criterion_main!(benches);
