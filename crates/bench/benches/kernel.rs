//! Micro-benchmarks for the simulation kernel hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_sim::dist::Zipf;
use gm_sim::time::SimTime;
use gm_sim::{EventQueue, LogHistogram, RngFactory};
use rand::Rng;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            // Pseudo-random times from a cheap LCG to keep the bench focused
            // on the queue, not the RNG.
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut x = 0x1234_5678_9abc_def0u64;
                for i in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    q.push(SimTime(x >> 32), i);
                }
                let mut sum = 0usize;
                while let Some((_, v)) = q.pop() {
                    sum += v;
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    for n in [1_000usize, 100_000] {
        let z = Zipf::new(n, 0.9);
        let mut rng = RngFactory::new(1).stream("bench");
        group.bench_with_input(BenchmarkId::new("sample", n), &n, |b, _| {
            b.iter(|| black_box(z.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = RngFactory::new(2).stream("bench");
    c.bench_function("histogram/record", |b| {
        let mut h = LogHistogram::for_latency_secs();
        b.iter(|| h.record(black_box(rng.gen::<f64>() * 0.1 + 1e-5)))
    });
    c.bench_function("histogram/quantile_p99", |b| {
        let mut h = LogHistogram::for_latency_secs();
        for _ in 0..100_000 {
            h.record(rng.gen::<f64>() * 0.1 + 1e-5);
        }
        b.iter(|| black_box(h.quantile(0.99)))
    });
}

criterion_group!(benches, bench_event_queue, bench_zipf, bench_histogram);
criterion_main!(benches);
