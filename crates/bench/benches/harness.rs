//! End-to-end slot-loop throughput: one simulated day of the small
//! configuration per policy. This is the unit of cost behind every sweep
//! in the reconstructed evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_day");
    group.sample_size(10);
    for (name, policy) in [
        ("all-on", PolicyKind::AllOn),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::small_demo(42);
                cfg.slots = 24;
                cfg.policy = policy;
                black_box(run_experiment(&cfg).brown_kwh)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
