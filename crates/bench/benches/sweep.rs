//! Sweep-engine cost: world materialization (cold vs. warm) and a small
//! policy sweep through the shared-world runner.
//!
//! The reconstruction suite is ~15 sweeps of 2–13 points each; what the
//! shared-world engine saves is exactly the cold-materialization cost this
//! bench isolates: `world/cold` pays `Workload::generate` + trace
//! synthesis + directory placement on every call, `world/warm` clones
//! three `Arc`s out of a populated cache. `sweep/policies` then measures a
//! real 4-point sweep end to end the way the suite runs one (pool +
//! global world cache), at the medium cluster scale the figures use.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_bench::run_tagged;
use greenmatch::config::ExperimentConfig;
use greenmatch::policy::PolicyKind;
use greenmatch::{World, WorldCache};

fn bench_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    // The medium config is what the figures sweep: 100k-object directory,
    // medium-week workload, 168-slot solar trace.
    let cfg = ExperimentConfig::medium(42);

    group.bench_function("cold", |b| {
        b.iter(|| {
            let world = World::try_materialize(black_box(&cfg)).expect("materialises");
            black_box(world.workload.batch_jobs().len())
        })
    });

    let cache = WorldCache::new();
    cache.get_or_materialize(&cfg).expect("prime the cache");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let world = World::try_materialize_in(black_box(&cfg), &cache).expect("cached");
            black_box(world.workload.batch_jobs().len())
        })
    });
    group.finish();
}

fn bench_policy_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    // One world, four policies — the canonical shape of the suite's
    // sweeps. Runs through the real pool + global cache path.
    group.bench_function("policies", |b| {
        b.iter(|| {
            let configs = [
                PolicyKind::AllOn,
                PolicyKind::PowerProportional,
                PolicyKind::GreedyGreen,
                PolicyKind::GreenMatch { delay_fraction: 1.0 },
            ]
            .iter()
            .map(|&p| (format!("{p:?}"), ExperimentConfig::small_demo(42).with_policy(p)))
            .collect();
            let results = run_tagged(configs);
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_materialization, bench_policy_sweep);
criterion_main!(benches);
