//! Scaling of the min-cost-flow matcher with job count and horizon — the
//! per-slot planning cost a deployment would pay. Uses a cold handle per
//! configuration so the numbers reflect a from-scratch solve; see
//! `matcher_kernel` for the warm-start comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_storage::ClusterSpec;
use gm_workload::JobId;
use greenmatch::matcher::{MatchInput, Matcher};
use greenmatch::policy::{BatteryView, JobView, PlanningModel, SiteView};

fn jobs(n: usize) -> Vec<JobView> {
    (0..n)
        .map(|i| JobView {
            id: JobId(i as u64),
            remaining_bytes: ((i % 37 + 1) as u64) << 32, // 4–148 GiB
            deadline_slot: i % 30,
            critical: false,
        })
        .collect()
}

fn green(h: usize) -> Vec<f64> {
    (0..h).map(|t| if (8..18).contains(&(t % 24)) { 3_000.0 } else { 0.0 }).collect()
}

fn bench_matcher(c: &mut Criterion) {
    let model = PlanningModel::from_spec(&ClusterSpec::medium_dc());
    let mut group = c.benchmark_group("matcher_solve");
    for n_jobs in [10usize, 100, 1_000] {
        for horizon in [6usize, 24, 48] {
            let js = jobs(n_jobs);
            let g = green(horizon);
            let busy = vec![500.0; horizon];
            let mut matcher = Matcher::new();
            matcher.set_warm_start(false);
            group.bench_with_input(
                BenchmarkId::new(format!("jobs{n_jobs}"), horizon),
                &horizon,
                |b, _| {
                    b.iter(|| {
                        let home = [SiteView::home(&g, model, BatteryView::default())];
                        let input = MatchInput {
                            jobs: &js,
                            current_slot: 0,
                            horizon,
                            sites: &home,
                            interactive_busy_secs: &busy,
                            slot_secs: 3600.0,
                            brown_cost_per_slot: None,
                        };
                        black_box(matcher.solve(&input).bytes_now)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
