//! Micro-benchmarks for the storage substrate hot paths: request routing
//! and service, gear transitions, and slot energy integration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_sim::time::{SimDuration, SimTime};
use gm_storage::{Cluster, ClusterSpec, IoRequest, ObjectId};

fn medium() -> Cluster {
    Cluster::new(ClusterSpec::medium_dc())
}

fn bench_serve(c: &mut Criterion) {
    c.bench_function("cluster/serve_read", |b| {
        let mut cluster = medium();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let req = IoRequest::read(
                SimTime::from_secs(i),
                ObjectId(i * 7919 % 100_000),
                black_box(256 << 10),
            );
            black_box(cluster.serve_request(&req))
        })
    });
    c.bench_function("cluster/serve_write_gated", |b| {
        let mut cluster = medium();
        cluster.set_active_gears(1, SimTime::ZERO);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let req = IoRequest::write(
                SimTime::from_secs(i),
                ObjectId(i * 104729 % 100_000),
                black_box(256 << 10),
            );
            black_box(cluster.serve_request(&req))
        })
    });
}

fn bench_gear_transitions(c: &mut Criterion) {
    c.bench_function("cluster/gear_cycle", |b| {
        let mut cluster = medium();
        let mut t = 0u64;
        b.iter(|| {
            t += 7_200;
            cluster.set_active_gears(1, SimTime::from_secs(t));
            cluster.set_active_gears(3, SimTime::from_secs(t + 3_600));
            black_box(cluster.total_spinups())
        })
    });
}

fn bench_end_slot(c: &mut Criterion) {
    c.bench_function("cluster/end_slot", |b| {
        let mut cluster = medium();
        let width = SimDuration::from_hours(1);
        let mut s = 0u64;
        b.iter(|| {
            s += 1;
            black_box(cluster.end_slot(SimTime::from_hours(s), width))
        })
    });
}

criterion_group!(benches, bench_serve, bench_gear_transitions, bench_end_slot);
criterion_main!(benches);
