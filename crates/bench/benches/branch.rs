//! Forked-sweep cost: what a shared checkpoint saves over re-simulating
//! the prefix per branch.
//!
//! A what-if family asks "given this run up to slot k, how do v variants
//! finish?". Without forking each variant must re-simulate the k-slot
//! prefix before it can diverge (`branch/cold`: one single-variant family
//! per branch, so every branch pays its own prefix); with forking the
//! prefix runs once and every branch resumes from the snapshot
//! (`branch/forked`). Both go through the real pool + global world cache
//! path and produce identical reports — `tests/snapshot.rs` and the
//! runner tests pin that — so the gap is pure wall-clock: k + v·(n−k)
//! simulated slots instead of v·n.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_bench::{run_branched, BranchSweep};
use greenmatch::config::ExperimentConfig;
use greenmatch::policy::PolicyKind;

const VARIANTS: [PolicyKind; 4] = [
    PolicyKind::GreenMatch { delay_fraction: 1.0 },
    PolicyKind::AllOn,
    PolicyKind::PowerProportional,
    PolicyKind::GreedyGreen,
];

fn family(fork_slot: usize) -> BranchSweep {
    let base = ExperimentConfig::small_demo(42)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    BranchSweep {
        base: base.clone(),
        fork_slot,
        variants: VARIANTS
            .iter()
            .map(|&p| (format!("{p:?}"), base.clone().with_policy(p)))
            .collect(),
    }
}

fn bench_branch(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch");
    group.sample_size(10);
    // Fork late (¾ of the week): the regime what-if analyses live in,
    // where almost all of the work is the shared prefix.
    let fork_slot = 3 * ExperimentConfig::small_demo(42).slots / 4;

    group.bench_function("forked", |b| {
        b.iter(|| {
            let results = run_branched(vec![family(black_box(fork_slot))]);
            black_box(results.len())
        })
    });

    group.bench_function("cold", |b| {
        b.iter(|| {
            // The same four branches, each as its own family: every one
            // re-simulates the shared prefix before diverging.
            let sweeps = family(fork_slot)
                .variants
                .into_iter()
                .map(|variant| BranchSweep {
                    base: family(fork_slot).base,
                    fork_slot,
                    variants: vec![variant],
                })
                .collect();
            let results = run_branched(black_box(sweeps));
            black_box(results.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_branch);
criterion_main!(benches);
