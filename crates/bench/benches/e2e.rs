//! End-to-end slot-loop cost at realistic scale: one full default-config
//! week (`ExperimentConfig::small_demo`, 168 slots) per policy — the unit
//! every sweep in the reconstructed evaluation multiplies by hundreds.
//!
//! The `harness` bench covers a single day for quick signal; this one runs
//! the whole horizon so steady-state effects (job backlog growth, matcher
//! graph reuse, scratch-buffer warm-up) are part of the measurement. Runs
//! go through the builder exactly as the sweep runner drives them: the
//! shared world (and its memoised columnar slot batches) comes from the
//! global [`WorldCache`], and one `SlotScratch` is reused across
//! iterations, so the measurement isolates per-run simulation cost — what
//! a sweep actually pays per point after the first.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use greenmatch::config::ExperimentConfig;
use greenmatch::phases::SlotScratch;
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;
use greenmatch::WorldCache;

fn bench_e2e_week(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_week");
    group.sample_size(10);
    for (name, policy) in [
        ("all-on", PolicyKind::AllOn),
        ("power-prop", PolicyKind::PowerProportional),
        ("edf", PolicyKind::Edf),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
        ("greenmatch30", PolicyKind::GreenMatch { delay_fraction: 0.3 }),
        ("greenmatch-carbon", PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 }),
    ] {
        let mut scratch = SlotScratch::new();
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::small_demo(42);
                cfg.policy = policy;
                let sim = Simulation::builder(&cfg)
                    .cache(WorldCache::global())
                    .scratch(&mut scratch)
                    .build()
                    .expect("config materialises");
                black_box(sim.run_to_end().brown_kwh)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e_week);
criterion_main!(benches);
