//! Property tests for the storage substrate: placement validity for every
//! layout/topology combination, FCFS queue monotonicity, write-log
//! conservation, and gear-transition sanity.

use gm_sim::time::{SimDuration, SimTime};
use gm_storage::layout::Topology;
use gm_storage::{DiskQueue, LayoutKind, ObjectId, WriteLog};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    // gears ∈ {2,3,4}, servers a multiple of gears, bays 1..4.
    (2usize..=4, 1usize..=6, 1usize..=4)
        .prop_map(|(gears, mult, bays)| Topology::new(gears * mult, bays, gears))
}

proptest! {
    #[test]
    fn every_layout_places_validly(
        topo in topo_strategy(),
        kind in prop_oneof![
            Just(LayoutKind::Gear),
            Just(LayoutKind::Random),
            Just(LayoutKind::Chained),
            Just(LayoutKind::Copyset),
        ],
        seed in 0u64..1_000,
        ids in proptest::collection::vec(0u64..100_000, 1..50),
    ) {
        // Replication limited by what the layout can host.
        let replication = match kind {
            LayoutKind::Gear => topo.gears.min(3),
            LayoutKind::Chained => (topo.n_disks() / topo.bays).min(3),
            _ => 3.min(topo.n_disks()),
        };
        let layout = kind.build(seed);
        for id in ids {
            let reps = layout.place(&topo, ObjectId(id), replication);
            prop_assert_eq!(reps.len(), replication);
            prop_assert!(reps.iter().all(|&d| d < topo.n_disks()), "in range");
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), replication, "distinct disks");
            // Determinism.
            prop_assert_eq!(layout.place(&topo, ObjectId(id), replication), reps);
        }
    }

    #[test]
    fn gear_layout_respects_gear_structure(
        topo in topo_strategy(),
        seed in 0u64..1_000,
        id in 0u64..100_000,
    ) {
        let layout = LayoutKind::Gear.build(seed);
        let reps = layout.place(&topo, ObjectId(id), topo.gears);
        for (r, &d) in reps.iter().enumerate() {
            prop_assert_eq!(topo.gear_of_disk(d), r);
        }
    }

    #[test]
    fn queue_completions_are_monotone_for_ordered_arrivals(
        arrivals in proptest::collection::vec((0u64..10_000, 1u64..100), 1..100)
    ) {
        let hour = SimDuration::from_hours(1);
        let mut sorted = arrivals;
        sorted.sort_by_key(|(t, _)| *t);
        let mut q = DiskQueue::new();
        let mut last_completion = SimTime::ZERO;
        for (t, svc) in sorted {
            let r = q.serve(SimTime::from_secs(t), SimTime::ZERO, SimDuration::from_secs(svc), hour);
            prop_assert!(r.start >= SimTime::from_secs(t), "no time travel");
            prop_assert!(r.completion >= last_completion, "FCFS completions monotone");
            prop_assert!(r.latency >= SimDuration::from_secs(svc), "latency ≥ service");
            last_completion = r.completion;
        }
    }

    #[test]
    fn queue_busy_drain_conserves_time(
        services in proptest::collection::vec(1u64..5_000, 0..50)
    ) {
        let hour = SimDuration::from_hours(1);
        let mut q = DiskQueue::new();
        let mut total = SimDuration::ZERO;
        for s in &services {
            q.add_background(SimTime::ZERO, SimTime::ZERO, SimDuration::from_secs(*s));
            total += SimDuration::from_secs(*s);
        }
        let mut drained = SimDuration::ZERO;
        for _ in 0..200 {
            let d = q.take_busy_in(hour);
            drained += d;
            if d == SimDuration::ZERO {
                break;
            }
        }
        prop_assert_eq!(drained, total, "busy time neither created nor destroyed");
        prop_assert_eq!(q.pending_busy(), SimDuration::ZERO);
    }

    #[test]
    fn cache_invariants_under_random_ops(
        capacity in 1u64..10_000,
        ops in proptest::collection::vec((0u64..100, 1u64..2_000, 0usize..3), 0..300),
    ) {
        use gm_storage::cache::LruCache;
        let mut c = LruCache::new(capacity);
        for (id, bytes, op) in ops {
            match op {
                0 => {
                    let _ = c.probe(ObjectId(id));
                }
                1 => {
                    c.insert(ObjectId(id), bytes);
                    // A just-inserted fitting object must hit immediately
                    // (it is the most-recent entry, immune to eviction).
                    if bytes <= capacity {
                        prop_assert!(c.probe(ObjectId(id)), "fresh insert of {id} must hit");
                    }
                }
                _ => {
                    c.invalidate(ObjectId(id));
                    // Invalidate makes the very next probe a miss…
                    let before = c.misses();
                    prop_assert!(!c.probe(ObjectId(id)));
                    prop_assert_eq!(c.misses(), before + 1);
                }
            }
            prop_assert!(c.used_bytes() <= capacity,
                "used {} > capacity {capacity}", c.used_bytes());
            prop_assert!((0.0..=1.0).contains(&c.hit_ratio()));
        }
    }

    #[test]
    fn writelog_conserves_bytes(
        ops in proptest::collection::vec((0usize..3, 0u64..1_000_000), 0..200)
    ) {
        let mut log = WriteLog::new(3);
        for (gear, bytes) in ops {
            if bytes % 2 == 0 {
                log.offload(gear, bytes);
            } else {
                log.reclaim(gear, bytes);
            }
            prop_assert_eq!(log.conservation_residual(), 0);
            prop_assert!(log.peak_pending() >= log.pending_total());
        }
    }
}
