//! I/O request types.

use crate::object::ObjectId;
use gm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Read from any replica.
    Read,
    /// Write to all live replicas (or the write log).
    Write,
}

/// One I/O request against the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Target object.
    pub object: ObjectId,
    /// Read or write.
    pub kind: IoKind,
    /// Transfer size in bytes.
    pub size_bytes: u64,
    /// Whether the access pattern is sequential (skips positioning cost).
    pub sequential: bool,
}

impl IoRequest {
    /// A random-access read.
    pub fn read(arrival: SimTime, object: ObjectId, size_bytes: u64) -> Self {
        IoRequest { arrival, object, kind: IoKind::Read, size_bytes, sequential: false }
    }

    /// A random-access write.
    pub fn write(arrival: SimTime, object: ObjectId, size_bytes: u64) -> Self {
        IoRequest { arrival, object, kind: IoKind::Write, size_bytes, sequential: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = IoRequest::read(SimTime::from_secs(1), ObjectId(5), 4096);
        assert_eq!(r.kind, IoKind::Read);
        assert!(!r.sequential);
        let w = IoRequest::write(SimTime::from_secs(2), ObjectId(5), 8192);
        assert_eq!(w.kind, IoKind::Write);
        assert_eq!(w.size_bytes, 8192);
    }
}
