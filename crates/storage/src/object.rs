//! Data objects and replica metadata.
//!
//! The unit of placement is a fixed-identity *object* (think: chunk, extent
//! or volume slice). Each object has `R` replicas placed on distinct disks
//! by a [`crate::layout::Layout`]. Replica order matters: replica 0 is the
//! *primary* and, under the gear layout, lives in the always-on gear.

use serde::{Deserialize, Serialize};

/// Opaque object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Flat disk index within the cluster (`server * bays + bay`).
pub type DiskIdx = usize;

/// A placed data object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataObject {
    /// Identifier.
    pub id: ObjectId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Disks holding each replica, in replica order (0 = primary). All
    /// entries are distinct.
    pub replicas: Vec<DiskIdx>,
}

/// Generalized directory entry: how an object's bytes are laid across
/// disks. The frozen directory always stores the replicated form; the
/// temperature layer overlays [`Placement::Erasure`] entries for objects it
/// has demoted to cold erasure coding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// `R`-way replication: full copies on distinct disks, index 0 primary.
    Replicated {
        /// Disks holding each replica, in replica order.
        replicas: Vec<DiskIdx>,
    },
    /// `k + m` erasure coding: any `k` of the `k + m` shards reconstruct
    /// the object; each shard holds `ceil(size / k)` bytes.
    Erasure {
        /// Data shards required for a read.
        k: usize,
        /// Parity shards tolerated as losses.
        m: usize,
        /// Disks holding each shard (`k + m` distinct entries).
        shards: Vec<DiskIdx>,
    },
}

impl Placement {
    /// All disks holding a piece of this object.
    pub fn disks(&self) -> &[DiskIdx] {
        match self {
            Placement::Replicated { replicas } => replicas,
            Placement::Erasure { shards, .. } => shards,
        }
    }

    /// Raw bytes consumed on disk for an object of `size_bytes`.
    pub fn stored_bytes(&self, size_bytes: u64) -> u64 {
        match self {
            Placement::Replicated { replicas } => replicas.len() as u64 * size_bytes,
            Placement::Erasure { k, m, .. } => (*k + *m) as u64 * size_bytes.div_ceil(*k as u64),
        }
    }

    /// How many disk losses this placement tolerates without data loss.
    pub fn fault_tolerance(&self) -> usize {
        match self {
            Placement::Replicated { replicas } => replicas.len().saturating_sub(1),
            Placement::Erasure { m, .. } => *m,
        }
    }
}

impl DataObject {
    /// Construct, asserting replica distinctness.
    pub fn new(id: ObjectId, size_bytes: u64, replicas: Vec<DiskIdx>) -> Self {
        debug_assert!(
            {
                let mut sorted = replicas.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "object {id:?} has duplicate replica disks: {replicas:?}"
        );
        DataObject { id, size_bytes, replicas }
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replicas.len()
    }

    /// The primary replica's disk.
    pub fn primary(&self) -> DiskIdx {
        self.replicas[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_basics() {
        let o = DataObject::new(ObjectId(7), 1 << 20, vec![3, 9, 17]);
        assert_eq!(o.replication(), 3);
        assert_eq!(o.primary(), 3);
        assert_eq!(o.size_bytes, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "duplicate replica disks")]
    fn duplicate_replicas_panic_in_debug() {
        let _ = DataObject::new(ObjectId(1), 1, vec![2, 5, 2]);
    }
}
