//! Data objects and replica metadata.
//!
//! The unit of placement is a fixed-identity *object* (think: chunk, extent
//! or volume slice). Each object has `R` replicas placed on distinct disks
//! by a [`crate::layout::Layout`]. Replica order matters: replica 0 is the
//! *primary* and, under the gear layout, lives in the always-on gear.

use serde::{Deserialize, Serialize};

/// Opaque object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Flat disk index within the cluster (`server * bays + bay`).
pub type DiskIdx = usize;

/// A placed data object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataObject {
    /// Identifier.
    pub id: ObjectId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Disks holding each replica, in replica order (0 = primary). All
    /// entries are distinct.
    pub replicas: Vec<DiskIdx>,
}

impl DataObject {
    /// Construct, asserting replica distinctness.
    pub fn new(id: ObjectId, size_bytes: u64, replicas: Vec<DiskIdx>) -> Self {
        debug_assert!(
            {
                let mut sorted = replicas.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "object {id:?} has duplicate replica disks: {replicas:?}"
        );
        DataObject { id, size_bytes, replicas }
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replicas.len()
    }

    /// The primary replica's disk.
    pub fn primary(&self) -> DiskIdx {
        self.replicas[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_basics() {
        let o = DataObject::new(ObjectId(7), 1 << 20, vec![3, 9, 17]);
        assert_eq!(o.replication(), 3);
        assert_eq!(o.primary(), 3);
        assert_eq!(o.size_bytes, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "duplicate replica disks")]
    fn duplicate_replicas_panic_in_debug() {
        let _ = DataObject::new(ObjectId(1), 1, vec![2, 5, 2]);
    }
}
