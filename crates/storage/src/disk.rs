//! Disk power/performance model.
//!
//! A disk is a three-state machine:
//!
//! ```text
//!   Standby --spin_up (latency, energy surcharge)--> Idle <--> Active
//! ```
//!
//! *Idle* means platters spinning but no I/O in service; *Active* is the
//! state during I/O. The per-slot energy integration takes the busy
//! fraction of the slot at active power and the remainder at idle power
//! (or the whole slot at standby power if spun down), plus a fixed energy
//! surcharge per spin-up — the classic disk-power accounting used by
//! power-proportional storage studies (Hibernator, PARAID, Sierra, Rabbit).
//!
//! Default parameters model an era-typical enterprise 3.5" 7200 rpm SATA
//! drive: 11.5 W at full I/O, 8 W idle, 1 W standby, 10 s spin-up with a
//! 24 J surcharge, 4.16 ms average rotational latency, 8.5 ms average seek,
//! 140 MB/s sustained transfer.

use gm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static disk characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Power while servicing I/O (W).
    pub active_w: f64,
    /// Power while spinning idle (W).
    pub idle_w: f64,
    /// Power in standby/spun-down (W).
    pub standby_w: f64,
    /// Time to spin up from standby.
    pub spinup_latency: SimDuration,
    /// Extra energy consumed by one spin-up, beyond idle power during the
    /// spin-up interval (J).
    pub spinup_extra_j: f64,
    /// Average seek time.
    pub avg_seek: SimDuration,
    /// Average rotational latency (half a revolution).
    pub avg_rotation: SimDuration,
    /// Sustained sequential transfer rate (bytes/s).
    pub transfer_bps: f64,
}

impl DiskSpec {
    /// Era-typical enterprise 7200 rpm SATA drive (see module docs).
    pub fn enterprise_sata() -> Self {
        DiskSpec {
            capacity_bytes: 2_000_000_000_000, // 2 TB
            active_w: 11.5,
            idle_w: 8.0,
            standby_w: 1.0,
            spinup_latency: SimDuration::from_secs(10),
            spinup_extra_j: 24.0,
            avg_seek: SimDuration::from_millis(8) + SimDuration::from_micros(500),
            avg_rotation: SimDuration::from_micros(4_160),
            transfer_bps: 140.0e6,
        }
    }

    /// Expected service time of one request of `size_bytes`.
    ///
    /// `sequential` requests skip the seek + rotation positioning cost
    /// (streaming scans, log appends); random requests pay it in full.
    pub fn service_time(&self, size_bytes: u64, sequential: bool) -> SimDuration {
        let transfer = SimDuration::from_secs_f64(size_bytes as f64 / self.transfer_bps);
        if sequential {
            transfer
        } else {
            self.avg_seek + self.avg_rotation + transfer
        }
    }

    /// Peak random-I/O throughput in requests/s for a given request size —
    /// the saturation bound per disk that admission logic plans against.
    pub fn random_iops(&self, size_bytes: u64) -> f64 {
        1.0 / self.service_time(size_bytes, false).as_secs_f64()
    }

    /// Spin-up energy surcharge in Wh.
    pub fn spinup_extra_wh(&self) -> f64 {
        self.spinup_extra_j / 3600.0
    }
}

impl Default for DiskSpec {
    fn default() -> Self {
        DiskSpec::enterprise_sata()
    }
}

/// Dynamic power state of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskPowerState {
    /// Spun down.
    Standby,
    /// Spinning up; ready at the contained instant.
    SpinningUp {
        /// Instant at which the disk becomes ready (reaches `Spinning`).
        ready_at: SimTime,
    },
    /// Platters spinning; Active vs Idle is derived from the busy fraction
    /// during energy integration rather than tracked as a separate state.
    Spinning,
}

/// A disk: spec + power state + cumulative accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    spec: DiskSpec,
    state: DiskPowerState,
    spinup_count: u64,
    spindown_count: u64,
    /// Total energy consumed (Wh), integrated per slot by `account_slot`.
    energy_wh: f64,
    /// Of which spin-up surcharges (Wh).
    spinup_energy_wh: f64,
}

impl Disk {
    /// A new disk, spinning (clusters boot with everything on).
    pub fn new(spec: DiskSpec) -> Self {
        Disk {
            spec,
            state: DiskPowerState::Spinning,
            spinup_count: 0,
            spindown_count: 0,
            energy_wh: 0.0,
            spinup_energy_wh: 0.0,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Current power state.
    pub fn state(&self) -> DiskPowerState {
        self.state
    }

    /// Whether I/O can be served right now (spinning, not mid-spin-up).
    pub fn is_ready(&self, now: SimTime) -> bool {
        match self.state {
            DiskPowerState::Spinning => true,
            DiskPowerState::SpinningUp { ready_at } => now >= ready_at,
            DiskPowerState::Standby => false,
        }
    }

    /// Instant at which the disk can serve I/O, given it is (or is being)
    /// spun up; `None` if in standby with no spin-up initiated.
    pub fn ready_at(&self) -> Option<SimTime> {
        match self.state {
            DiskPowerState::Spinning => Some(SimTime::ZERO),
            DiskPowerState::SpinningUp { ready_at } => Some(ready_at),
            DiskPowerState::Standby => None,
        }
    }

    /// Begin spinning up at `now`. No-op if already spinning or in
    /// transition. Returns `true` if a spin-up was actually initiated.
    pub fn spin_up(&mut self, now: SimTime) -> bool {
        match self.state {
            DiskPowerState::Standby => {
                self.state =
                    DiskPowerState::SpinningUp { ready_at: now + self.spec.spinup_latency };
                self.spinup_count += 1;
                // Surcharge accounted immediately; the idle-power draw during
                // the transition is captured by per-slot integration.
                self.spinup_energy_wh += self.spec.spinup_extra_wh();
                self.energy_wh += self.spec.spinup_extra_wh();
                true
            }
            _ => false,
        }
    }

    /// Spin down at `now`. In-flight spin-ups complete first (spin-down is
    /// refused mid-transition, as real drives do). Returns `true` on an
    /// actual state change.
    pub fn spin_down(&mut self, now: SimTime) -> bool {
        match self.state {
            DiskPowerState::Spinning => {
                self.state = DiskPowerState::Standby;
                self.spindown_count += 1;
                true
            }
            DiskPowerState::SpinningUp { ready_at } if now >= ready_at => {
                self.state = DiskPowerState::Standby;
                self.spindown_count += 1;
                true
            }
            _ => false,
        }
    }

    /// Promote a completed spin-up transition to `Spinning`. Call at slot
    /// boundaries.
    pub fn settle(&mut self, now: SimTime) {
        if let DiskPowerState::SpinningUp { ready_at } = self.state {
            if now >= ready_at {
                self.state = DiskPowerState::Spinning;
            }
        }
    }

    /// Average power (W) over a slot of `width` during which the disk was
    /// busy serving I/O for `busy` time. The state is read *after* `settle`.
    pub fn power_in_slot(&self, busy: SimDuration, width: SimDuration) -> f64 {
        debug_assert!(busy <= width, "busy {busy} exceeds slot {width}");
        match self.state {
            DiskPowerState::Standby => self.spec.standby_w,
            // During a transition the platters are accelerating: draw ~active.
            DiskPowerState::SpinningUp { .. } => self.spec.active_w,
            DiskPowerState::Spinning => {
                let f = busy.as_secs_f64() / width.as_secs_f64();
                self.spec.active_w * f + self.spec.idle_w * (1.0 - f)
            }
        }
    }

    /// Integrate one slot of energy given the busy time within it.
    /// Returns the energy added (Wh).
    pub fn account_slot(&mut self, busy: SimDuration, width: SimDuration) -> f64 {
        let wh = self.power_in_slot(busy, width) * width.as_hours_f64();
        self.energy_wh += wh;
        wh
    }

    /// Number of spin-ups so far.
    pub fn spinup_count(&self) -> u64 {
        self.spinup_count
    }

    /// Number of spin-downs so far.
    pub fn spindown_count(&self) -> u64 {
        self.spindown_count
    }

    /// Total energy consumed so far (Wh).
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Cumulative spin-up surcharge energy (Wh).
    pub fn spinup_energy_wh(&self) -> f64 {
        self.spinup_energy_wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration(gm_sim::time::MICROS_PER_HOUR);

    #[test]
    fn service_time_components() {
        let s = DiskSpec::enterprise_sata();
        // 1 MiB random read: seek 8.5ms + rot 4.16ms + transfer ~7.49ms.
        let t = s.service_time(1 << 20, false);
        let secs = t.as_secs_f64();
        assert!(secs > 0.019 && secs < 0.021, "1MiB random {secs}");
        // Sequential skips positioning.
        let t_seq = s.service_time(1 << 20, true);
        assert!(t_seq < t);
        assert!((t_seq.as_secs_f64() - (1u64 << 20) as f64 / 140.0e6).abs() < 1e-6);
    }

    #[test]
    fn small_random_iops_in_realistic_range() {
        let s = DiskSpec::enterprise_sata();
        let iops = s.random_iops(4096);
        assert!(iops > 60.0 && iops < 100.0, "4KiB IOPS {iops}");
    }

    #[test]
    fn spin_state_machine() {
        let mut d = Disk::new(DiskSpec::enterprise_sata());
        let t0 = SimTime::ZERO;
        assert!(d.is_ready(t0));
        assert!(d.spin_down(t0));
        assert!(!d.is_ready(t0));
        assert_eq!(d.state(), DiskPowerState::Standby);
        // Spin up: ready after the latency.
        assert!(d.spin_up(t0));
        assert!(!d.is_ready(t0 + SimDuration::from_secs(5)));
        assert!(d.is_ready(t0 + SimDuration::from_secs(10)));
        // Redundant spin-up is a no-op.
        assert!(!d.spin_up(t0));
        assert_eq!(d.spinup_count(), 1);
        // Settle promotes the state.
        d.settle(t0 + SimDuration::from_secs(30));
        assert_eq!(d.state(), DiskPowerState::Spinning);
    }

    #[test]
    fn spin_down_refused_mid_transition() {
        let mut d = Disk::new(DiskSpec::enterprise_sata());
        d.spin_down(SimTime::ZERO);
        d.spin_up(SimTime::ZERO);
        assert!(!d.spin_down(SimTime::ZERO + SimDuration::from_secs(1)));
        // After the transition completes it can spin down again.
        assert!(d.spin_down(SimTime::ZERO + SimDuration::from_secs(11)));
        assert_eq!(d.spindown_count(), 2);
    }

    #[test]
    fn spinup_costs_energy() {
        let mut d = Disk::new(DiskSpec::enterprise_sata());
        d.spin_down(SimTime::ZERO);
        let before = d.energy_wh();
        d.spin_up(SimTime::ZERO);
        let surcharge = d.energy_wh() - before;
        assert!((surcharge - 24.0 / 3600.0).abs() < 1e-9);
        assert_eq!(d.spinup_energy_wh(), surcharge);
    }

    #[test]
    fn slot_power_blends_active_and_idle() {
        let d = Disk::new(DiskSpec::enterprise_sata());
        // Fully idle slot: 8 W.
        assert!((d.power_in_slot(SimDuration::ZERO, HOUR) - 8.0).abs() < 1e-12);
        // Fully busy slot: 11.5 W.
        assert!((d.power_in_slot(HOUR, HOUR) - 11.5).abs() < 1e-12);
        // Half busy: 9.75 W.
        assert!((d.power_in_slot(HOUR / 2, HOUR) - 9.75).abs() < 1e-12);
    }

    #[test]
    fn standby_slot_power_is_low() {
        let mut d = Disk::new(DiskSpec::enterprise_sata());
        d.spin_down(SimTime::ZERO);
        let wh = d.account_slot(SimDuration::ZERO, HOUR);
        assert!((wh - 1.0).abs() < 1e-12, "standby hour = 1 Wh, got {wh}");
    }

    #[test]
    fn account_slot_accumulates() {
        let mut d = Disk::new(DiskSpec::enterprise_sata());
        let e1 = d.account_slot(SimDuration::ZERO, HOUR);
        let e2 = d.account_slot(HOUR, HOUR);
        assert!((d.energy_wh() - (e1 + e2)).abs() < 1e-12);
        assert!((d.energy_wh() - 19.5).abs() < 1e-9);
    }
}
