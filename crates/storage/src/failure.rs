//! Disk failure and rebuild modeling.
//!
//! Massive storage systems lose disks continuously; what matters for a
//! renewable-aware scheduler is that **rebuild is deferrable bulk work** —
//! exactly the kind of load that can be matched to green windows, but with
//! a hard reliability clock: while an object is under-replicated, a second
//! failure can destroy it.
//!
//! The model here:
//!
//! * Each disk fails independently with a configurable annualised failure
//!   rate (AFR). Spun-down (standby) disks fail at a reduced rate, but
//!   every spin-up cycle adds wear, modeled as a fixed number of
//!   equivalent powered-on hours — the classic cycling-wear trade-off
//!   power-proportional systems must respect.
//! * On failure the disk is logically replaced at once by a blank drive;
//!   the lost replicas constitute `rebuild_bytes` of sequential write work
//!   that the scheduler must place (as a repair job). Until
//!   [`crate::cluster::Cluster::mark_rebuilt`] is called, reads route
//!   around the disk and redundancy is reduced.
//! * A **data-loss event** is recorded when a disk fails while another
//!   disk sharing at least one object with it is still awaiting rebuild
//!   (the standard approximation that under-replicated windows are the
//!   loss exposure — this is what copyset-style layouts minimise).

use gm_sim::rng::splitmix64;
use serde::{Deserialize, Serialize};

/// Hours in a mean (Julian) year — the AFR denominator. Shared by the
/// failure model and its tests so the two can never drift apart.
pub const HOURS_PER_YEAR: f64 = 8_766.0;

/// Failure-process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Annualised failure rate of a powered, spinning disk (fraction/yr).
    pub afr: f64,
    /// Multiplier on the AFR while in standby (< 1: parked disks are
    /// mechanically safer).
    pub standby_factor: f64,
    /// Wear added by one spin-up cycle, in equivalent powered-on hours.
    pub spinup_wear_hours: f64,
}

impl FailureSpec {
    /// Era-typical nearline AFR of ~3 %/yr, halved in standby, 10 h of
    /// equivalent wear per start-stop cycle.
    pub fn nearline() -> Self {
        FailureSpec { afr: 0.03, standby_factor: 0.5, spinup_wear_hours: 10.0 }
    }

    /// Probability that a disk fails during `hours` of operation in the
    /// given state, with `spinups` start-stop cycles in the interval.
    pub fn failure_probability(&self, hours: f64, standby: bool, spinups: u64) -> f64 {
        let base = if standby { self.afr * self.standby_factor } else { self.afr };
        let effective_hours = hours + spinups as f64 * self.spinup_wear_hours;
        // Exponential survival over the interval.
        1.0 - (-base * effective_hours / HOURS_PER_YEAR).exp()
    }
}

impl Default for FailureSpec {
    fn default() -> Self {
        FailureSpec::nearline()
    }
}

/// Deterministic per-(disk, slot) failure draw, independent of all other
/// randomness in the run.
#[derive(Debug, Clone, Copy)]
pub struct FailureDice {
    seed: u64,
}

impl FailureDice {
    /// Dice for a run seed.
    pub fn new(seed: u64) -> Self {
        FailureDice { seed: seed ^ 0xFA11_FA11_FA11_FA11 }
    }

    /// Uniform `[0,1)` draw for `(disk, slot)`.
    pub fn draw(&self, disk: usize, slot: usize) -> f64 {
        let mut s = self
            .seed
            .wrapping_add((disk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((slot as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What one disk failure implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// The failed disk.
    pub disk: usize,
    /// Objects that lost a replica.
    pub affected_objects: usize,
    /// Objects whose only other replicas were also failed/rebuilding —
    /// counted as data-loss events.
    pub lost_objects: usize,
    /// Bytes of replica data to re-create.
    pub rebuild_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_probability_scales_with_time() {
        let f = FailureSpec::nearline();
        let week = f.failure_probability(168.0, false, 0);
        let year = f.failure_probability(HOURS_PER_YEAR, false, 0);
        assert!(week < year);
        // One year at 3 % AFR ≈ 2.96 % (exponential).
        assert!((year - 0.0296).abs() < 0.001, "{year}");
        // A week is tiny but positive.
        assert!(week > 4e-4 && week < 8e-4, "{week}");
    }

    #[test]
    fn standby_is_safer_but_cycling_hurts() {
        let f = FailureSpec::nearline();
        let spinning = f.failure_probability(168.0, false, 0);
        let parked = f.failure_probability(168.0, true, 0);
        assert!(parked < spinning);
        // Heavy cycling can overwhelm the standby benefit.
        let cycled = f.failure_probability(168.0, true, 200);
        assert!(cycled > parked);
        assert!(cycled > spinning, "200 cycles × 10 h wear > the standby saving");
    }

    #[test]
    fn zero_hours_zero_probability() {
        let f = FailureSpec::nearline();
        assert_eq!(f.failure_probability(0.0, false, 0), 0.0);
    }

    #[test]
    fn dice_are_deterministic_and_spread() {
        let d = FailureDice::new(42);
        assert_eq!(d.draw(3, 7), d.draw(3, 7));
        assert_ne!(d.draw(3, 7), d.draw(3, 8));
        assert_ne!(d.draw(3, 7), d.draw(4, 7));
        // Roughly uniform: mean of many draws near 0.5.
        let mean: f64 = (0..1_000).map(|i| d.draw(i % 37, i / 37)).sum::<f64>() / 1_000.0;
        assert!((mean - 0.5).abs() < 0.05, "{mean}");
        for i in 0..100 {
            let v = d.draw(i, i * 3);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
