//! Write off-loading log.
//!
//! When a gear is powered down, writes still have to reach `R` replicas
//! eventually. The gear-0 servers host a small append-only **write log**:
//! a write destined to a powered-down replica is appended there (cheap,
//! sequential) and recorded as a *pending reclaim*. When the target gear
//! powers back up, pending bytes are replayed to their true homes; the
//! replay I/O and its energy are the **reclaim overhead** that renewable-
//! aware scheduling pays for aggressive power-gating (the analogue of
//! consolidation/migration overhead in VM-based formulations).

use serde::{Deserialize, Serialize};

/// Per-gear pending reclaim bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteLog {
    /// Pending bytes destined for each gear.
    pending_bytes: Vec<u64>,
    /// Cumulative bytes ever off-loaded.
    total_offloaded: u64,
    /// Cumulative bytes reclaimed (replayed).
    total_reclaimed: u64,
    /// Maximum pending bytes observed (log sizing diagnostic).
    peak_pending: u64,
}

impl WriteLog {
    /// A log covering `gears` gear groups.
    pub fn new(gears: usize) -> Self {
        WriteLog {
            pending_bytes: vec![0; gears],
            total_offloaded: 0,
            total_reclaimed: 0,
            peak_pending: 0,
        }
    }

    /// Record `bytes` off-loaded on behalf of `gear`.
    pub fn offload(&mut self, gear: usize, bytes: u64) {
        self.pending_bytes[gear] += bytes;
        self.total_offloaded += bytes;
        let pending: u64 = self.pending_bytes.iter().sum();
        self.peak_pending = self.peak_pending.max(pending);
    }

    /// Pending bytes for `gear`.
    pub fn pending_for(&self, gear: usize) -> u64 {
        self.pending_bytes[gear]
    }

    /// Total pending bytes across gears.
    pub fn pending_total(&self) -> u64 {
        self.pending_bytes.iter().sum()
    }

    /// Reclaim up to `budget_bytes` for `gear` (caller ensures the gear is
    /// powered). Returns the bytes actually replayed.
    pub fn reclaim(&mut self, gear: usize, budget_bytes: u64) -> u64 {
        let take = self.pending_bytes[gear].min(budget_bytes);
        self.pending_bytes[gear] -= take;
        self.total_reclaimed += take;
        take
    }

    /// Cumulative bytes off-loaded.
    pub fn total_offloaded(&self) -> u64 {
        self.total_offloaded
    }

    /// Cumulative bytes replayed to their homes.
    pub fn total_reclaimed(&self) -> u64 {
        self.total_reclaimed
    }

    /// Peak simultaneous pending bytes (how big the log disk must be).
    pub fn peak_pending(&self) -> u64 {
        self.peak_pending
    }

    /// Conservation: offloaded = reclaimed + pending.
    pub fn conservation_residual(&self) -> i64 {
        self.total_offloaded as i64 - self.total_reclaimed as i64 - self.pending_total() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_and_reclaim_roundtrip() {
        let mut log = WriteLog::new(3);
        log.offload(1, 1000);
        log.offload(2, 500);
        log.offload(1, 200);
        assert_eq!(log.pending_for(1), 1200);
        assert_eq!(log.pending_total(), 1700);
        assert_eq!(log.total_offloaded(), 1700);

        // Partial reclaim respects the budget.
        assert_eq!(log.reclaim(1, 700), 700);
        assert_eq!(log.pending_for(1), 500);
        // Over-budget reclaim drains what exists.
        assert_eq!(log.reclaim(1, 10_000), 500);
        assert_eq!(log.pending_for(1), 0);
        assert_eq!(log.reclaim(1, 10_000), 0);
        assert_eq!(log.total_reclaimed(), 1200);
        assert_eq!(log.conservation_residual(), 0);
    }

    #[test]
    fn peak_pending_tracks_high_water() {
        let mut log = WriteLog::new(2);
        log.offload(0, 100);
        log.offload(1, 300);
        log.reclaim(1, 300);
        log.offload(0, 50);
        assert_eq!(log.peak_pending(), 400);
        assert_eq!(log.pending_total(), 150);
        assert_eq!(log.conservation_residual(), 0);
    }
}
