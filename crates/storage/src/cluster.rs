//! The assembled storage cluster.
//!
//! [`Cluster`] owns the servers, disks, per-disk FCFS timelines, the object
//! directory, the gear controller and the write log, and exposes the three
//! operations schedulers compose:
//!
//! 1. [`Cluster::set_active_gears`] — spatial matching: power servers (and
//!    their disks) of gears `g..` down, `..g` up. Gear 0 can never be
//!    powered off (it holds the primary copy of every object under the gear
//!    layout, plus the write log).
//! 2. [`Cluster::serve_request`] — route one interactive I/O: reads go to
//!    the least-backlogged *active* replica (with on-demand spin-up as a
//!    last resort for layouts that orphan objects); writes hit every active
//!    replica and off-load powered-down replicas to the write log.
//! 3. [`Cluster::add_sequential_work`] / [`Cluster::reclaim`] — batch work
//!    placement and write-log replay.
//!
//! [`Cluster::end_slot`] integrates the slot's energy: per-disk busy/idle/
//! standby blending, per-server linear CPU power (utilisation proxied by
//! the mean busy fraction of the server's disks), plus the spin-up and
//! boot surcharges incurred during the slot. Overhead energy (spin-ups,
//! reclaim replay work) is also reported separately so the loss-breakdown
//! experiment can attribute it.

use crate::cache::{LruCache, CACHE_HIT_SERVICE};
use crate::disk::{Disk, DiskSpec};
use crate::failure::FailureReport;
use crate::layout::{obj_hash, LayoutKind, Topology};
use crate::object::{DataObject, DiskIdx, ObjectId, Placement};
use crate::queue::{DiskQueue, ServedRequest};
use crate::request::{IoKind, IoRequest};
use crate::server::{Server, ServerSpec};
use crate::temperature::{EwmaEstimator, EwmaParams, Temperature, TemperatureEstimator};
use crate::writelog::WriteLog;
use gm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Static cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Physical shape (servers × bays, gear count).
    pub topology: Topology,
    /// Disk model.
    pub disk: DiskSpec,
    /// Server model.
    pub server: ServerSpec,
    /// Replication factor (≤ gears for the gear layout).
    pub replication: usize,
    /// Placement strategy.
    pub layout: LayoutKind,
    /// Placement seed.
    pub layout_seed: u64,
    /// Number of objects to pre-place.
    pub objects: usize,
    /// Object size in bytes (uniform; object-size spread is carried by
    /// request sizes instead, which is what latency actually sees).
    pub object_size_bytes: u64,
    /// Aggregate RAM read-cache capacity in bytes (0 = disabled). Models
    /// the gear-0 frontends' page cache at object granularity.
    pub cache_bytes: u64,
}

impl ClusterSpec {
    /// The default medium data center of the reconstruction: 48 servers ×
    /// 4 disks, 3-way gear replication, 100 k objects of 64 MiB.
    pub fn medium_dc() -> Self {
        ClusterSpec {
            topology: Topology::new(48, 4, 3),
            disk: DiskSpec::enterprise_sata(),
            server: ServerSpec::storage_node(),
            replication: 3,
            layout: LayoutKind::Gear,
            layout_seed: 0x6EA2,
            objects: 100_000,
            object_size_bytes: 64 << 20,
            cache_bytes: 0,
        }
    }

    /// A small cluster for tests/examples: 6 servers × 2 disks, 3 gears.
    pub fn small() -> Self {
        ClusterSpec {
            topology: Topology::new(6, 2, 3),
            disk: DiskSpec::enterprise_sata(),
            server: ServerSpec::storage_node(),
            replication: 3,
            layout: LayoutKind::Gear,
            layout_seed: 7,
            objects: 1_000,
            object_size_bytes: 16 << 20,
            cache_bytes: 0,
        }
    }
}

/// Current gear activation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GearState {
    /// Gears `0..active` are powered.
    pub active: usize,
    /// Total gear count.
    pub total: usize,
}

/// Energy integrated for one slot, by component (Wh).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotEnergy {
    /// Disk energy (all states, including transition draw).
    pub disks_wh: f64,
    /// Server CPU-side energy.
    pub servers_wh: f64,
    /// Of the total, energy attributable to spin-up/boot surcharges.
    pub spinup_overhead_wh: f64,
    /// Marginal energy of write-log reclaim replay work done this slot.
    pub reclaim_overhead_wh: f64,
    /// Marginal energy of on-demand (availability-forced) spin-ups.
    pub forced_spinup_count: u64,
}

impl SlotEnergy {
    /// Total IT load of the slot (Wh).
    pub fn total_wh(&self) -> f64 {
        self.disks_wh + self.servers_wh
    }
}

/// The immutable part of a cluster: its spec plus the fully placed object
/// directory.
///
/// Placing the directory (`objects` × `replication` layout decisions) is
/// the expensive half of cluster construction and depends only on the
/// [`ClusterSpec`], so sweeps build it once and share an
/// `Arc<ClusterLayout>` across runs; every run's [`Cluster`] then carries
/// only the cheap mutable state (disks, queues, write log, counters).
/// Nothing in the simulation mutates the directory — failures track
/// rebuild state per *disk*, not per object.
#[derive(Debug, Clone)]
pub struct ClusterLayout {
    spec: ClusterSpec,
    directory: Vec<DataObject>,
}

impl ClusterLayout {
    /// Place every object of `spec` and freeze the result.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.replication >= 1);
        let topo = spec.topology;
        let layout = spec.layout.build(spec.layout_seed);
        let directory = (0..spec.objects)
            .map(|i| {
                let id = ObjectId(i as u64);
                DataObject::new(
                    id,
                    spec.object_size_bytes,
                    layout.place(&topo, id, spec.replication),
                )
            })
            .collect();
        ClusterLayout { spec, directory }
    }

    /// The spec the layout was placed for.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placed object directory.
    pub fn directory(&self) -> &[DataObject] {
        &self.directory
    }
}

/// The full mutable state of a [`Cluster`], for checkpointing.
///
/// The immutable half (the [`ClusterLayout`]: spec + placed directory) is
/// deliberately absent — it is a pure function of config and is rebuilt or
/// cache-shared on restore. The lazily-built disk→objects reverse index is
/// also excluded (rebuilt on first use; its contents are layout-derived).
/// All fields mirror [`Cluster`]'s mutable fields exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Per-server power state.
    pub servers: Vec<Server>,
    /// Per-disk power/transition state and lifetime counters.
    pub disks: Vec<Disk>,
    /// Per-disk FCFS timelines.
    pub queues: Vec<DiskQueue>,
    /// Off-loaded write log.
    pub writelog: WriteLog,
    /// Gears `0..active` powered.
    pub active_gears: usize,
    /// Per-disk awaiting-rebuild flags.
    pub pending_rebuild: Vec<bool>,
    /// Lifetime failure counters.
    pub total_failures: u64,
    /// Objects that went through an exposure window with no intact replica.
    pub total_lost_objects: u64,
    /// Total rebuild work generated (bytes).
    pub total_rebuild_bytes: u64,
    /// Reads served with every replica awaiting rebuild.
    pub degraded_reads: u64,
    /// Surcharge energy accrued since the last `end_slot` (zero at slot
    /// boundaries, carried for robustness).
    pub pending_surcharge_wh: f64,
    /// Reclaim busy time accrued since the last `end_slot`.
    pub pending_reclaim_busy: SimDuration,
    /// On-demand spin-ups since the last `end_slot`.
    pub pending_forced_spinups: u64,
    /// Lifetime spin-up count.
    pub total_spinups: u64,
    /// Lifetime forced spin-up count.
    pub total_forced_spinups: u64,
    /// RAM read-cache arena (recency order, hit/miss counters).
    pub cache: LruCache,
    /// Temperature-tier state, present iff tiering was enabled. Absent in
    /// pre-tiering snapshots (v1), which restore onto tiering-off clusters.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tiering: Option<TieringSnapshot>,
}

/// Serialized temperature-tier state (mirrors [`Tiering`]'s dynamic
/// fields; thresholds and EC geometry come from config on restore).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieringSnapshot {
    /// Smoothed per-object access rates.
    pub rate: Vec<f64>,
    /// Hits accumulated since the last `tier_step`.
    pub hits: Vec<u32>,
    /// Current per-object temperature.
    pub temp: Vec<Temperature>,
    /// Erasure-coded objects: `(object index, shard disks)`, sorted by
    /// object index for byte-stable snapshots.
    pub ec: Vec<(u32, Vec<DiskIdx>)>,
    /// Objects with an in-flight migration, sorted.
    pub migrating: Vec<u32>,
    /// Raw bytes currently consumed across all placements.
    pub capacity_bytes: u64,
}

/// One slot's classifier output: tier census plus the migration work the
/// scheduler should enqueue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStep {
    /// Objects classified hot.
    pub hot: u64,
    /// Objects classified warm.
    pub warm: u64,
    /// Objects classified cold.
    pub cold: u64,
    /// Object indices selected for replicated→EC demotion this slot.
    pub demote: Vec<u32>,
    /// Object indices selected for EC→replicated promotion this slot.
    pub promote: Vec<u32>,
    /// Total I/O bytes the demotions will cost (read replica + write shards).
    pub demote_bytes: u64,
    /// Total I/O bytes the promotions will cost (read shards + write replicas).
    pub promote_bytes: u64,
}

/// Live temperature-tier state: per-object access tracking, the swappable
/// classifier, the EC placement overlay, and capacity accounting. Boxed on
/// [`Cluster`] so tiering-off runs pay one pointer.
#[derive(Debug)]
struct Tiering {
    /// Ceiling on the cold fraction of the fleet (demotion stops there).
    cold_fraction_target: f64,
    /// EC data shards.
    k: usize,
    /// EC parity shards.
    m: usize,
    /// The estimator (EWMA today; the trait keeps it swappable).
    estimator: EwmaEstimator,
    /// Serve hits per object since the last `tier_step`.
    hits: Vec<u32>,
    /// Current temperature per object.
    temp: Vec<Temperature>,
    /// EC placement overlay: object index → shard disks. Objects absent
    /// here still follow the frozen replicated directory.
    ec: HashMap<usize, Vec<DiskIdx>>,
    /// Per-object in-flight-migration flag (placement flips at completion).
    migrating: Vec<bool>,
    /// Raw bytes consumed across all placements.
    capacity_bytes: u64,
}

/// The live cluster.
pub struct Cluster {
    layout: Arc<ClusterLayout>,
    servers: Vec<Server>,
    disks: Vec<Disk>,
    queues: Vec<DiskQueue>,
    writelog: WriteLog,
    active_gears: usize,
    /// Slot width used for background-interference accounting.
    slot_width: SimDuration,
    /// Per-disk: failed and awaiting rebuild (disk is physically replaced
    /// immediately, but holds no data until `mark_rebuilt`).
    pending_rebuild: Vec<bool>,
    /// Reverse index disk → objects with a replica there (built lazily on
    /// the first failure; empty until then).
    disk_objects: Vec<Vec<u32>>,
    /// Lifetime failure counters.
    total_failures: u64,
    total_lost_objects: u64,
    total_rebuild_bytes: u64,
    /// Reads whose every replica was awaiting rebuild (served degraded).
    degraded_reads: u64,
    /// Surcharge energy (spin-ups, boots) incurred since the last
    /// `end_slot`, already destined for that slot's total.
    pending_surcharge_wh: f64,
    /// Reclaim busy time added since the last `end_slot`.
    pending_reclaim_busy: SimDuration,
    /// On-demand spin-ups since the last `end_slot`.
    pending_forced_spinups: u64,
    /// Lifetime counters.
    total_spinups: u64,
    total_forced_spinups: u64,
    /// Read cache (disabled at zero capacity).
    cache: LruCache,
    /// Temperature-tier state (None = tiering off; the default).
    tiering: Option<Box<Tiering>>,
}

impl Cluster {
    /// Build a cluster and place all objects (cold path: places a fresh
    /// layout; sweeps should share one via [`Cluster::from_layout`]).
    pub fn new(spec: ClusterSpec) -> Self {
        Cluster::from_layout(Arc::new(ClusterLayout::new(spec)))
    }

    /// Build the mutable cluster state over a shared immutable layout.
    pub fn from_layout(layout: Arc<ClusterLayout>) -> Self {
        let spec = &layout.spec;
        let topo = spec.topology;
        let gears = topo.gears;
        Cluster {
            servers: (0..topo.servers).map(|_| Server::new(spec.server)).collect(),
            disks: (0..topo.n_disks()).map(|_| Disk::new(spec.disk)).collect(),
            queues: (0..topo.n_disks()).map(|_| DiskQueue::new()).collect(),
            writelog: WriteLog::new(gears),
            active_gears: gears,
            slot_width: SimDuration::from_hours(1),
            pending_rebuild: vec![false; topo.n_disks()],
            disk_objects: Vec::new(),
            total_failures: 0,
            total_lost_objects: 0,
            total_rebuild_bytes: 0,
            degraded_reads: 0,
            pending_surcharge_wh: 0.0,
            pending_reclaim_busy: SimDuration::ZERO,
            pending_forced_spinups: 0,
            total_spinups: 0,
            total_forced_spinups: 0,
            cache: LruCache::new(spec.cache_bytes),
            tiering: None,
            layout,
        }
    }

    /// Turn the temperature layer on: track per-object access, classify
    /// hot/warm/cold each `tier_step`, and overlay `k + m` erasure coding
    /// for demoted objects. Must be called before any traffic (capacity
    /// accounting starts from the all-replicated state).
    pub fn enable_tiering(
        &mut self,
        params: EwmaParams,
        cold_fraction_target: f64,
        k: usize,
        m: usize,
    ) {
        let spec = &self.layout.spec;
        let topo = spec.topology;
        assert!(k >= 1 && m >= 1, "EC needs k >= 1 data and m >= 1 parity shards");
        assert!((0.0..=1.0).contains(&cold_fraction_target));
        let per_gear = topo.servers_per_gear() * topo.bays;
        assert!(
            (k + m).div_ceil(topo.gears) <= per_gear,
            "EC ({}+{}) shards do not fit {} gears of {} disks",
            k,
            m,
            topo.gears,
            per_gear
        );
        let n = spec.objects;
        self.tiering = Some(Box::new(Tiering {
            cold_fraction_target,
            k,
            m,
            estimator: EwmaEstimator::new(params, n),
            hits: vec![0; n],
            temp: vec![Temperature::Warm; n],
            ec: HashMap::new(),
            migrating: vec![false; n],
            capacity_bytes: n as u64 * spec.replication as u64 * spec.object_size_bytes,
        }));
    }

    /// Whether the temperature layer is on.
    pub fn tiering_enabled(&self) -> bool {
        self.tiering.is_some()
    }

    /// Raw bytes consumed across all placements. With tiering off this is
    /// the constant `objects × replication × size`.
    pub fn capacity_in_use_bytes(&self) -> u64 {
        match &self.tiering {
            Some(t) => t.capacity_bytes,
            None => {
                let s = &self.layout.spec;
                s.objects as u64 * s.replication as u64 * s.object_size_bytes
            }
        }
    }

    /// Number of objects currently on erasure coding.
    pub fn ec_objects(&self) -> usize {
        self.tiering.as_ref().map_or(0, |t| t.ec.len())
    }

    /// Current placement of an object: the frozen replicated directory
    /// entry, unless the temperature layer has demoted it to EC.
    pub fn placement_of(&self, obj: usize) -> Placement {
        if let Some(t) = &self.tiering {
            if let Some(shards) = t.ec.get(&obj) {
                return Placement::Erasure { k: t.k, m: t.m, shards: shards.clone() };
            }
        }
        Placement::Replicated { replicas: self.layout.directory[obj].replicas.clone() }
    }

    /// Deterministic EC shard placement for `obj`, packed bottom-up: shard
    /// `s` goes to gear `s / per_gear`, so the `k` data shards fill the
    /// lowest (powered-first) gears and parity sits above them. Where the
    /// stripe fits gear 0 this mirrors the gear layout's replica-0
    /// guarantee — a normal k-shard read never forces a spin-up; parity is
    /// only touched by writes (write-log offloaded when dark) and
    /// rebuilds. Spread within the gear by object hash with linear probing
    /// for distinctness.
    fn place_ec_shards(&self, obj: usize) -> Vec<DiskIdx> {
        let t = self.tiering.as_ref().expect("shard placement needs tiering");
        let topo = self.layout.spec.topology;
        let per_gear = topo.servers_per_gear() * topo.bays;
        let id = ObjectId(obj as u64);
        let seed = self.layout.spec.layout_seed ^ 0xEC0D_E000;
        let mut shards = Vec::with_capacity(t.k + t.m);
        for s in 0..t.k + t.m {
            let gear = s / per_gear;
            let base = gear * per_gear;
            let start = (obj_hash(seed, id, s as u64) % per_gear as u64) as usize;
            let mut probe = 0;
            loop {
                let d = base + (start + probe) % per_gear;
                if !shards.contains(&d) {
                    shards.push(d);
                    break;
                }
                probe += 1;
                debug_assert!(probe <= per_gear, "gear {gear} exhausted placing shard {s}");
            }
        }
        shards
    }

    /// Run one classification slot of width `hours`: fold the accumulated
    /// serve hits into the estimator, reclassify every object, and select up
    /// to `max_migrations` demotions and promotions. Demotion stops at the
    /// cold-fraction ceiling; both directions skip objects already
    /// migrating. Selected objects are marked in-flight — the placement
    /// flips when the caller reports the migration job complete via
    /// [`Cluster::complete_migration`]. No-op with tiering off.
    pub fn tier_step(&mut self, hours: f64, max_migrations: usize) -> TierStep {
        let Some(t) = &mut self.tiering else {
            return TierStep::default();
        };
        let mut out = TierStep::default();
        for obj in 0..t.hits.len() {
            t.estimator.observe(obj, t.hits[obj], hours);
            t.hits[obj] = 0;
            t.temp[obj] = t.estimator.classify(obj, t.temp[obj]);
            match t.temp[obj] {
                Temperature::Hot => out.hot += 1,
                Temperature::Warm => out.warm += 1,
                Temperature::Cold => out.cold += 1,
            }
        }
        let spec = &self.layout.spec;
        let size = spec.object_size_bytes;
        let shard_bytes = size.div_ceil(t.k as u64);
        let ec_stored = (t.k + t.m) as u64 * shard_bytes;
        // Demotions: cold replicated objects, up to the budget and the
        // cold-fraction ceiling (counting EC residents and in-flight work).
        let ceiling = (t.cold_fraction_target * spec.objects as f64).floor() as usize;
        let mut cold_footprint = t.ec.len() + t.migrating.iter().filter(|&&f| f).count();
        for obj in 0..t.temp.len() {
            if out.demote.len() >= max_migrations || cold_footprint >= ceiling {
                break;
            }
            if t.temp[obj] == Temperature::Cold && !t.migrating[obj] && !t.ec.contains_key(&obj) {
                t.migrating[obj] = true;
                cold_footprint += 1;
                out.demote.push(obj as u32);
                out.demote_bytes += size + ec_stored;
            }
        }
        // Promotions: hot EC objects, up to the budget.
        for obj in 0..t.temp.len() {
            if out.promote.len() >= max_migrations {
                break;
            }
            if t.temp[obj] == Temperature::Hot && !t.migrating[obj] && t.ec.contains_key(&obj) {
                t.migrating[obj] = true;
                out.promote.push(obj as u32);
                out.promote_bytes += t.k as u64 * shard_bytes + spec.replication as u64 * size;
            }
        }
        out
    }

    /// Flip the placement of migrated objects once their (scheduled,
    /// green-matched) copy work has executed. `demote` installs EC shards
    /// and releases the replicas; promotion restores the directory replicas
    /// and releases the shards. Returns `(bytes released, bytes written)` —
    /// the capacity-conservation pair the auditor checks.
    pub fn complete_migration(&mut self, objs: &[u32], demote: bool) -> (u64, u64) {
        if objs.is_empty() {
            return (0, 0);
        }
        let placements: Vec<Vec<DiskIdx>> = if demote {
            objs.iter().map(|&o| self.place_ec_shards(o as usize)).collect()
        } else {
            Vec::new()
        };
        let spec_size = self.layout.spec.object_size_bytes;
        let replication = self.layout.spec.replication as u64;
        let t = self.tiering.as_mut().expect("migration needs tiering");
        let shard_bytes = spec_size.div_ceil(t.k as u64);
        let ec_stored = (t.k + t.m) as u64 * shard_bytes;
        let rep_stored = replication * spec_size;
        let mut released = 0u64;
        let mut written = 0u64;
        for (i, &o) in objs.iter().enumerate() {
            let obj = o as usize;
            debug_assert!(t.migrating[obj], "completing a migration that was never scheduled");
            t.migrating[obj] = false;
            if demote {
                let prev = t.ec.insert(obj, placements[i].clone());
                debug_assert!(prev.is_none(), "demoting an already-EC object");
                released += rep_stored;
                written += ec_stored;
            } else {
                let prev = t.ec.remove(&obj);
                debug_assert!(prev.is_some(), "promoting a replicated object");
                released += ec_stored;
                written += rep_stored;
            }
        }
        t.capacity_bytes = t.capacity_bytes - released + written;
        (released, written)
    }

    /// Capture the full mutable state for checkpointing. The layout is not
    /// captured (see [`ClusterSnapshot`]); restoring pairs this state with
    /// a layout rebuilt from the resume config.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            servers: self.servers.clone(),
            disks: self.disks.clone(),
            queues: self.queues.clone(),
            writelog: self.writelog.clone(),
            active_gears: self.active_gears,
            pending_rebuild: self.pending_rebuild.clone(),
            total_failures: self.total_failures,
            total_lost_objects: self.total_lost_objects,
            total_rebuild_bytes: self.total_rebuild_bytes,
            degraded_reads: self.degraded_reads,
            pending_surcharge_wh: self.pending_surcharge_wh,
            pending_reclaim_busy: self.pending_reclaim_busy,
            pending_forced_spinups: self.pending_forced_spinups,
            total_spinups: self.total_spinups,
            total_forced_spinups: self.total_forced_spinups,
            cache: self.cache.clone(),
            tiering: self.tiering.as_ref().map(|t| {
                let mut ec: Vec<(u32, Vec<DiskIdx>)> =
                    t.ec.iter().map(|(&o, s)| (o as u32, s.clone())).collect();
                ec.sort_unstable_by_key(|(o, _)| *o);
                let migrating: Vec<u32> =
                    (0..t.migrating.len() as u32).filter(|&o| t.migrating[o as usize]).collect();
                TieringSnapshot {
                    rate: t.estimator.rate.clone(),
                    hits: t.hits.clone(),
                    temp: t.temp.clone(),
                    ec,
                    migrating,
                    capacity_bytes: t.capacity_bytes,
                }
            }),
        }
    }

    /// Overlay a previously captured state onto this (freshly assembled)
    /// cluster, keeping its layout and slot width. Fails if the snapshot's
    /// per-server/per-disk vectors do not match this cluster's topology —
    /// a snapshot cannot be resumed under a different cluster shape.
    pub fn restore_state(&mut self, snap: &ClusterSnapshot) -> Result<(), String> {
        let topo = self.layout.spec.topology;
        if snap.servers.len() != topo.servers
            || snap.disks.len() != topo.n_disks()
            || snap.queues.len() != topo.n_disks()
            || snap.pending_rebuild.len() != topo.n_disks()
        {
            return Err(format!(
                "cluster snapshot shape ({} servers, {} disks) does not match topology \
                 ({} servers, {} disks)",
                snap.servers.len(),
                snap.disks.len(),
                topo.servers,
                topo.n_disks()
            ));
        }
        if snap.active_gears == 0 || snap.active_gears > topo.gears {
            return Err(format!(
                "cluster snapshot active_gears {} out of range 1..={}",
                snap.active_gears, topo.gears
            ));
        }
        self.servers = snap.servers.clone();
        self.disks = snap.disks.clone();
        self.queues = snap.queues.clone();
        self.writelog = snap.writelog.clone();
        self.active_gears = snap.active_gears;
        self.pending_rebuild = snap.pending_rebuild.clone();
        // The reverse index is lazily derived from the layout; drop any
        // stale copy so the first post-restore failure rebuilds it.
        self.disk_objects = Vec::new();
        self.total_failures = snap.total_failures;
        self.total_lost_objects = snap.total_lost_objects;
        self.total_rebuild_bytes = snap.total_rebuild_bytes;
        self.degraded_reads = snap.degraded_reads;
        self.pending_surcharge_wh = snap.pending_surcharge_wh;
        self.pending_reclaim_busy = snap.pending_reclaim_busy;
        self.pending_forced_spinups = snap.pending_forced_spinups;
        self.total_spinups = snap.total_spinups;
        self.total_forced_spinups = snap.total_forced_spinups;
        self.cache = snap.cache.clone();
        match (&mut self.tiering, &snap.tiering) {
            (None, None) => {}
            (Some(t), Some(ts)) => {
                let n = t.hits.len();
                if ts.rate.len() != n || ts.hits.len() != n || ts.temp.len() != n {
                    return Err(format!(
                        "tiering snapshot tracks {} objects, cluster has {n}",
                        ts.rate.len()
                    ));
                }
                t.estimator.rate = ts.rate.clone();
                t.hits = ts.hits.clone();
                t.temp = ts.temp.clone();
                t.ec = ts.ec.iter().map(|(o, s)| (*o as usize, s.clone())).collect();
                t.migrating = vec![false; n];
                for &o in &ts.migrating {
                    t.migrating[o as usize] = true;
                }
                t.capacity_bytes = ts.capacity_bytes;
            }
            (mine, theirs) => {
                return Err(format!(
                    "tiering mismatch: cluster {}, snapshot {}",
                    if mine.is_some() { "on" } else { "off" },
                    if theirs.is_some() { "on" } else { "off" }
                ));
            }
        }
        Ok(())
    }

    /// The static spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.layout.spec
    }

    /// The shared immutable layout.
    pub fn layout(&self) -> &Arc<ClusterLayout> {
        &self.layout
    }

    /// Set the slot width used for background-interference accounting
    /// (defaults to 1 hour; call once before the run if the clock differs).
    pub fn set_slot_width(&mut self, width: SimDuration) {
        assert!(width.0 > 0);
        self.slot_width = width;
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.layout.spec.topology
    }

    /// Current gear state.
    pub fn gear_state(&self) -> GearState {
        GearState { active: self.active_gears, total: self.layout.spec.topology.gears }
    }

    /// The object directory.
    pub fn directory(&self) -> &[DataObject] {
        &self.layout.directory
    }

    /// The write log.
    pub fn write_log(&self) -> &WriteLog {
        &self.writelog
    }

    /// Lifetime spin-up count (policy-driven + forced).
    pub fn total_spinups(&self) -> u64 {
        self.total_spinups
    }

    /// Lifetime disk failures injected.
    pub fn total_failures(&self) -> u64 {
        self.total_failures
    }

    /// Objects that went through an exposure window with no intact replica.
    pub fn total_lost_objects(&self) -> u64 {
        self.total_lost_objects
    }

    /// Total rebuild work generated by failures (bytes).
    pub fn total_rebuild_bytes(&self) -> u64 {
        self.total_rebuild_bytes
    }

    /// Reads served while every replica was awaiting rebuild.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// Whether `disk` is awaiting rebuild.
    pub fn is_rebuilding(&self, disk: DiskIdx) -> bool {
        self.pending_rebuild[disk]
    }

    /// The read cache (disabled at zero capacity).
    pub fn cache(&self) -> &LruCache {
        &self.cache
    }

    /// Cumulative spin-up count of one disk (failure-model input).
    pub fn disk_spinups(&self, disk: DiskIdx) -> u64 {
        self.disks[disk].spinup_count()
    }

    /// Whether `disk` is currently in standby (failure-model input).
    pub fn disk_in_standby(&self, disk: DiskIdx) -> bool {
        matches!(self.disks[disk].state(), crate::disk::DiskPowerState::Standby)
    }

    /// Build (once) the reverse index disk → object ids.
    fn ensure_disk_index(&mut self) {
        if !self.disk_objects.is_empty() {
            return;
        }
        self.disk_objects = vec![Vec::new(); self.layout.spec.topology.n_disks()];
        for obj in &self.layout.directory {
            for &d in &obj.replicas {
                self.disk_objects[d].push(obj.id.0 as u32);
            }
        }
    }

    /// Inject a disk failure at `now`. The drive is logically replaced at
    /// once (blank); its replicas must be re-created by
    /// [`Cluster::rebuild_step`]/[`Cluster::mark_rebuilt`]. Returns the
    /// failure's blast radius. Failing an already-rebuilding disk extends
    /// the window but generates no new work.
    pub fn fail_disk(&mut self, disk: DiskIdx, now: SimTime) -> FailureReport {
        self.ensure_disk_index();
        self.total_failures += 1;
        if self.pending_rebuild[disk] {
            return FailureReport { disk, affected_objects: 0, lost_objects: 0, rebuild_bytes: 0 };
        }
        // Exposure check before marking, so co-failed disks are visible.
        // Objects the temperature layer moved to EC are skipped here (their
        // replicas were released) and scanned via the EC overlay instead.
        let mut lost = 0usize;
        let mut affected = 0usize;
        for &oid in &self.disk_objects[disk] {
            if self.tiering.as_ref().is_some_and(|t| t.ec.contains_key(&(oid as usize))) {
                continue;
            }
            let obj = &self.layout.directory[oid as usize];
            let intact = obj.replicas.iter().any(|&d| d != disk && !self.pending_rebuild[d]);
            if !intact {
                lost += 1;
            }
            affected += 1;
        }
        let mut rebuild_bytes = affected as u64 * self.layout.spec.object_size_bytes;
        // EC overlay: a shard on the failed disk is rebuilt by reading k
        // survivors and writing the replacement; more than m failed shards
        // is data loss. Sums only, so map order does not matter.
        if let Some(t) = &self.tiering {
            let shard_bytes = self.layout.spec.object_size_bytes.div_ceil(t.k as u64);
            for shards in t.ec.values() {
                if !shards.contains(&disk) {
                    continue;
                }
                affected += 1;
                rebuild_bytes += (t.k as u64 + 1) * shard_bytes;
                let failed =
                    shards.iter().filter(|&&d| d == disk || self.pending_rebuild[d]).count();
                if failed > t.m {
                    lost += 1;
                }
            }
        }
        self.pending_rebuild[disk] = true;
        // The replacement drive spins up fresh (it must be written to).
        let srv = self.layout.spec.topology.server_of_disk(disk);
        if self.servers[srv].is_on() {
            self.disks[disk].spin_up(now);
        }
        self.total_lost_objects += lost as u64;
        self.total_rebuild_bytes += rebuild_bytes;
        FailureReport { disk, affected_objects: affected, lost_objects: lost, rebuild_bytes }
    }

    /// Perform `bytes` of rebuild toward `disk` at `now`: sequential reads
    /// from surviving replicas plus the sequential write onto the
    /// replacement. The caller (scheduler) decides when this runs —
    /// rebuild is schedulable work like any other batch job.
    pub fn rebuild_step(&mut self, disk: DiskIdx, bytes: u64, now: SimTime) -> ServedRequest {
        debug_assert!(self.pending_rebuild[disk], "rebuild_step on a healthy disk");
        // Write onto the replacement drive.
        let ready = self.ensure_disk_up(disk, now, false);
        let service = self.layout.spec.disk.service_time(bytes, true);
        self.queues[disk].add_background(now, ready, service)
    }

    /// Declare `disk` fully re-populated.
    pub fn mark_rebuilt(&mut self, disk: DiskIdx) {
        self.pending_rebuild[disk] = false;
    }

    /// Lifetime forced (availability-driven) spin-up count.
    pub fn total_forced_spinups(&self) -> u64 {
        self.total_forced_spinups
    }

    /// Whether the server owning `disk` is on and the disk is spinning or
    /// in transition.
    fn disk_available(&self, disk: DiskIdx) -> bool {
        let srv = self.layout.spec.topology.server_of_disk(disk);
        !self.pending_rebuild[disk]
            && self.servers[srv].is_on()
            && self.disks[disk].ready_at().is_some()
    }

    /// Ready instant of `disk`, spinning it (and booting its server) up on
    /// demand if necessary. `forced` marks availability-driven spin-ups.
    fn ensure_disk_up(&mut self, disk: DiskIdx, now: SimTime, forced: bool) -> SimTime {
        let srv = self.layout.spec.topology.server_of_disk(disk);
        let mut ready = now;
        if self.servers[srv].power_on() {
            self.pending_surcharge_wh += self.layout.spec.server.poweron_extra_wh();
            ready = now + SimDuration::from_secs_f64(self.layout.spec.server.poweron_latency_s);
        }
        if self.disks[disk].spin_up(now) {
            self.pending_surcharge_wh += self.layout.spec.disk.spinup_extra_wh();
            self.total_spinups += 1;
            if forced {
                self.pending_forced_spinups += 1;
                self.total_forced_spinups += 1;
            }
        }
        match self.disks[disk].ready_at() {
            Some(t) => ready.max(t),
            None => ready,
        }
    }

    /// Power gears `0..active` on and the rest off. Gear 0 is always kept
    /// on. Disks that are mid-I/O finish their backlog regardless (the
    /// timeline cursor is independent of power state; a real system would
    /// drain before parking — the energy difference is the tail of one
    /// request).
    pub fn set_active_gears(&mut self, active: usize, now: SimTime) {
        let active = active.clamp(1, self.layout.spec.topology.gears);
        let topo = self.layout.spec.topology;
        for g in 0..topo.gears {
            let powered = g < active;
            let spg = topo.servers_per_gear();
            for srv in g * spg..(g + 1) * spg {
                if powered {
                    if self.servers[srv].power_on() {
                        self.pending_surcharge_wh += self.layout.spec.server.poweron_extra_wh();
                    }
                    for d in topo.disks_of_server(srv) {
                        if self.disks[d].spin_up(now) {
                            self.pending_surcharge_wh += self.layout.spec.disk.spinup_extra_wh();
                            self.total_spinups += 1;
                        }
                    }
                } else {
                    for d in topo.disks_of_server(srv) {
                        self.disks[d].spin_down(now);
                    }
                    // Only power the server off if every disk actually
                    // parked (spin-downs mid-transition are refused).
                    if topo.disks_of_server(srv).all(|d| {
                        matches!(self.disks[d].state(), crate::disk::DiskPowerState::Standby)
                    }) {
                        self.servers[srv].power_off();
                    }
                }
            }
        }
        self.active_gears = active;
    }

    /// Serve one interactive request. Returns the client-visible outcome.
    pub fn serve_request(&mut self, req: &IoRequest) -> ServedRequest {
        let obj_idx = req.object.0 as usize;
        let obj_size = self.layout.directory[obj_idx].size_bytes;
        if let Some(t) = &mut self.tiering {
            // Access tracking on the hot path: one saturating add.
            t.hits[obj_idx] = t.hits[obj_idx].saturating_add(1);
        }
        match req.kind {
            IoKind::Read => {
                // RAM cache absorbs hot reads without touching a disk.
                if self.cache.probe(req.object) {
                    let completion = req.arrival + CACHE_HIT_SERVICE;
                    return ServedRequest {
                        start: req.arrival,
                        completion,
                        latency: CACHE_HIT_SERVICE,
                    };
                }
                if self.tiering.as_ref().is_some_and(|t| t.ec.contains_key(&obj_idx)) {
                    let served = self.serve_ec_read(req, obj_idx);
                    self.cache.insert(req.object, obj_size);
                    return served;
                }
                // Pick the replica under a shared borrow, mutate after: this
                // is the per-request hot path and must not clone the replica
                // list.
                let (disk, forced, degraded) = {
                    let replicas = &self.layout.directory[obj_idx].replicas;
                    // Least-backlogged replica among available disks.
                    let best_active = replicas
                        .iter()
                        .copied()
                        .filter(|&d| self.disk_available(d))
                        .min_by_key(|&d| self.queues[d].next_free());
                    match best_active {
                        Some(d) => (d, false, false),
                        None => {
                            // Orphaned (non-gear layouts, or failures): forced
                            // spin-up of the least-backlogged replica that
                            // still holds data.
                            let intact = replicas
                                .iter()
                                .copied()
                                .filter(|&d| !self.pending_rebuild[d])
                                .min_by_key(|&d| self.queues[d].next_free());
                            match intact {
                                Some(d) => (d, true, false),
                                // Every replica awaiting rebuild: degraded
                                // service from the primary's replacement.
                                None => (replicas[0], true, true),
                            }
                        }
                    }
                };
                if degraded {
                    self.degraded_reads += 1;
                }
                if forced {
                    self.ensure_disk_up(disk, req.arrival, true);
                }
                let ready = self.ensure_disk_up(disk, req.arrival, false);
                let service = self.layout.spec.disk.service_time(req.size_bytes, req.sequential);
                let served = self.queues[disk].serve(req.arrival, ready, service, self.slot_width);
                self.cache.insert(req.object, obj_size);
                served
            }
            IoKind::Write => {
                self.cache.invalidate(req.object);
                if self.tiering.as_ref().is_some_and(|t| t.ec.contains_key(&obj_idx)) {
                    return self.serve_ec_write(req, obj_idx);
                }
                // Primary (gear 0 under the gear layout) takes the write in
                // the client's critical path; other active replicas absorb
                // it too; powered-down replicas are off-loaded to the log.
                let mut ack: Option<ServedRequest> = None;
                let n_replicas = self.layout.directory[obj_idx].replicas.len();
                for r in 0..n_replicas {
                    let disk = self.layout.directory[obj_idx].replicas[r];
                    if r == 0 || self.disk_available(disk) {
                        let ready = self.ensure_disk_up(
                            disk,
                            req.arrival,
                            r == 0 && !self.disk_available(disk),
                        );
                        let service =
                            self.layout.spec.disk.service_time(req.size_bytes, req.sequential);
                        let served =
                            self.queues[disk].serve(req.arrival, ready, service, self.slot_width);
                        if r == 0 {
                            ack = Some(served);
                        }
                    } else {
                        let gear = self.layout.spec.topology.gear_of_disk(disk);
                        self.writelog.offload(gear, req.size_bytes);
                        // The log append itself: sequential write on the
                        // least-loaded gear-0 disk.
                        let log_disk = self
                            .layout
                            .spec
                            .topology
                            .disks_in_gear_range(0)
                            .min_by_key(|&d| self.queues[d].next_free())
                            .expect("gear 0 is never empty");
                        let service = self.layout.spec.disk.service_time(req.size_bytes, true);
                        let ready = self.ensure_disk_up(log_disk, req.arrival, false);
                        self.queues[log_disk].serve(req.arrival, ready, service, self.slot_width);
                    }
                }
                ack.expect("primary replica always written")
            }
        }
    }

    /// Serve a read of an erasure-coded object: fan-in from the `k`
    /// least-backlogged available shards, spinning intact shards up on
    /// demand (forced) when fewer than `k` are powered. With fewer than `k`
    /// intact shards the read is degraded — reconstruction would need data
    /// that is mid-rebuild — and is served from whatever shards exist.
    fn serve_ec_read(&mut self, req: &IoRequest, obj_idx: usize) -> ServedRequest {
        let (k, shards) = {
            let t = self.tiering.as_ref().expect("EC read needs tiering");
            (t.k, t.ec[&obj_idx].clone())
        };
        // Choose k shards: available first, then intact (forced spin-up).
        let mut chosen: Vec<(DiskIdx, bool)> = Vec::with_capacity(k);
        let mut avail: Vec<DiskIdx> =
            shards.iter().copied().filter(|&d| self.disk_available(d)).collect();
        avail.sort_by_key(|&d| self.queues[d].next_free());
        for &d in avail.iter().take(k) {
            chosen.push((d, false));
        }
        if chosen.len() < k {
            let mut intact: Vec<DiskIdx> = shards
                .iter()
                .copied()
                .filter(|&d| !self.pending_rebuild[d] && !chosen.iter().any(|&(c, _)| c == d))
                .collect();
            intact.sort_by_key(|&d| self.queues[d].next_free());
            for &d in &intact {
                if chosen.len() == k {
                    break;
                }
                chosen.push((d, true));
            }
        }
        if chosen.len() < k {
            // Fewer than k intact shards: degraded service from whatever
            // shard replacements exist (mirrors the replicated fallback).
            self.degraded_reads += 1;
            for &d in &shards {
                if chosen.len() == k {
                    break;
                }
                if !chosen.iter().any(|&(c, _)| c == d) {
                    chosen.push((d, true));
                }
            }
        }
        let per_shard = req.size_bytes.div_ceil(k as u64);
        let mut slowest: Option<ServedRequest> = None;
        for &(d, forced) in &chosen {
            if forced {
                self.ensure_disk_up(d, req.arrival, true);
            }
            let ready = self.ensure_disk_up(d, req.arrival, false);
            let service = self.layout.spec.disk.service_time(per_shard, req.sequential);
            let served = self.queues[d].serve(req.arrival, ready, service, self.slot_width);
            slowest = Some(match slowest {
                Some(prev) if prev.completion >= served.completion => prev,
                _ => served,
            });
        }
        // The client sees the slowest shard (k-fan-in barrier).
        slowest.expect("k >= 1 shards served")
    }

    /// Serve a write to an erasure-coded object: a full-stripe update of
    /// all `k + m` shards. Shard 0 carries the ack; powered-down shards
    /// off-load to the write log exactly like replicated writes.
    fn serve_ec_write(&mut self, req: &IoRequest, obj_idx: usize) -> ServedRequest {
        let (k, n_shards, shards) = {
            let t = self.tiering.as_ref().expect("EC write needs tiering");
            (t.k, t.k + t.m, t.ec[&obj_idx].clone())
        };
        let per_shard = req.size_bytes.div_ceil(k as u64);
        let mut ack: Option<ServedRequest> = None;
        for (s, &disk) in shards.iter().enumerate().take(n_shards) {
            if s == 0 || self.disk_available(disk) {
                let ready =
                    self.ensure_disk_up(disk, req.arrival, s == 0 && !self.disk_available(disk));
                let service = self.layout.spec.disk.service_time(per_shard, req.sequential);
                let served = self.queues[disk].serve(req.arrival, ready, service, self.slot_width);
                if s == 0 {
                    ack = Some(served);
                }
            } else {
                let gear = self.layout.spec.topology.gear_of_disk(disk);
                self.writelog.offload(gear, per_shard);
                let log_disk = self
                    .layout
                    .spec
                    .topology
                    .disks_in_gear_range(0)
                    .min_by_key(|&d| self.queues[d].next_free())
                    .expect("gear 0 is never empty");
                let service = self.layout.spec.disk.service_time(per_shard, true);
                let ready = self.ensure_disk_up(log_disk, req.arrival, false);
                self.queues[log_disk].serve(req.arrival, ready, service, self.slot_width);
            }
        }
        ack.expect("shard 0 always written")
    }

    /// Add `bytes` of sequential batch work on `disk` starting no earlier
    /// than `now` (the disk is spun up on demand, counted as policy-driven).
    pub fn add_sequential_work(
        &mut self,
        disk: DiskIdx,
        bytes: u64,
        now: SimTime,
    ) -> ServedRequest {
        let ready = self.ensure_disk_up(disk, now, false);
        let service = self.layout.spec.disk.service_time(bytes, true);
        self.queues[disk].add_background(now, ready, service)
    }

    /// Replay up to `budget_bytes` of off-loaded writes for each *powered*
    /// gear. The replay work is sequential writes on the target gear's
    /// disks; its busy time is tagged as reclaim overhead. Returns total
    /// bytes replayed.
    pub fn reclaim(&mut self, budget_bytes: u64, now: SimTime) -> u64 {
        let topo = self.layout.spec.topology;
        let mut replayed = 0;
        for gear in 1..self.active_gears {
            let bytes = self.writelog.reclaim(gear, budget_bytes);
            if bytes == 0 {
                continue;
            }
            replayed += bytes;
            // Spread the replay across the gear's disks round-robin.
            let disks = topo.disks_in_gear_range(gear);
            let per = bytes / disks.len() as u64;
            let service_per = self.layout.spec.disk.service_time(per.max(1), true);
            for d in disks {
                let ready = self.ensure_disk_up(d, now, false);
                self.queues[d].add_background(now, ready, service_per);
                self.pending_reclaim_busy += service_per;
            }
        }
        replayed
    }

    /// Queueing backlog (service debt) of `disk` at `now`.
    pub fn backlog_of(&self, disk: DiskIdx, now: SimTime) -> SimDuration {
        self.queues[disk].backlog_at(now)
    }

    /// Mean queue backlog (seconds) across currently-available disks.
    pub fn mean_active_backlog_secs(&self, now: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for d in 0..self.disks.len() {
            if self.disk_available(d) {
                sum += self.queues[d].backlog_at(now).as_secs_f64();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Integrate one slot ending at `slot_end` of width `width`.
    pub fn end_slot(&mut self, slot_end: SimTime, width: SimDuration) -> SlotEnergy {
        let topo = self.layout.spec.topology;
        let mut out = SlotEnergy::default();

        // Settle spin-up transitions that completed within the slot.
        for d in &mut self.disks {
            d.settle(slot_end);
        }

        // Disk energy: drain busy time, blend power.
        let mut busy_frac = vec![0.0f64; topo.servers];
        for idx in 0..self.disks.len() {
            let busy = self.queues[idx].take_busy_in(width);
            out.disks_wh += self.disks[idx].account_slot(busy, width);
            busy_frac[topo.server_of_disk(idx)] +=
                busy.as_secs_f64() / width.as_secs_f64() / topo.bays as f64;
        }

        // Server energy: CPU utilisation proxied by mean disk busy fraction.
        let hours = width.as_hours_f64();
        for (srv, server) in self.servers.iter_mut().enumerate() {
            out.servers_wh += server.account_slot(busy_frac[srv].min(1.0), hours);
        }

        // Surcharges incurred during this slot.
        out.spinup_overhead_wh = self.pending_surcharge_wh;
        out.disks_wh += self.pending_surcharge_wh; // surcharges ride on the disk/server bill
        self.pending_surcharge_wh = 0.0;

        // Reclaim overhead: marginal (active − idle) power over the replay
        // busy time. The busy time itself is already inside `disks_wh`; the
        // overhead figure is attribution, not additional energy.
        let marginal_w = self.layout.spec.disk.active_w - self.layout.spec.disk.idle_w;
        out.reclaim_overhead_wh = self.pending_reclaim_busy.as_hours_f64() * marginal_w;
        self.pending_reclaim_busy = SimDuration::ZERO;

        out.forced_spinup_count = self.pending_forced_spinups;
        self.pending_forced_spinups = 0;

        out
    }

    /// Power draw (W) the cluster would average if every active component
    /// idled — the floor the gear controller plans against.
    pub fn idle_power_at_gears(&self, gears: usize) -> f64 {
        let topo = self.layout.spec.topology;
        let gears = gears.clamp(1, topo.gears);
        let on_servers = gears * topo.servers_per_gear();
        let off_servers = topo.servers - on_servers;
        on_servers as f64
            * (self.layout.spec.server.idle_w + topo.bays as f64 * self.layout.spec.disk.idle_w)
            + off_servers as f64
                * (self.layout.spec.server.off_w
                    + topo.bays as f64 * self.layout.spec.disk.standby_w)
    }

    /// Peak power draw (W) with `gears` active and every disk/CPU saturated.
    pub fn peak_power_at_gears(&self, gears: usize) -> f64 {
        let topo = self.layout.spec.topology;
        let gears = gears.clamp(1, topo.gears);
        let on_servers = gears * topo.servers_per_gear();
        let off_servers = topo.servers - on_servers;
        on_servers as f64
            * (self.layout.spec.server.peak_w + topo.bays as f64 * self.layout.spec.disk.active_w)
            + off_servers as f64
                * (self.layout.spec.server.off_w
                    + topo.bays as f64 * self.layout.spec.disk.standby_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        Cluster::new(ClusterSpec::small())
    }

    const HOUR: SimDuration = SimDuration(gm_sim::time::MICROS_PER_HOUR);

    #[test]
    fn builds_and_places_objects() {
        let c = small_cluster();
        assert_eq!(c.directory().len(), 1_000);
        for obj in c.directory() {
            assert_eq!(obj.replication(), 3);
        }
        assert_eq!(c.gear_state(), GearState { active: 3, total: 3 });
    }

    #[test]
    fn read_served_by_active_replica() {
        let mut c = small_cluster();
        let req = IoRequest::read(SimTime::from_secs(10), ObjectId(5), 1 << 20);
        let served = c.serve_request(&req);
        assert!(served.latency.as_secs_f64() < 0.1, "uncontended read is fast");
    }

    #[test]
    fn gear_down_keeps_reads_available() {
        let mut c = small_cluster();
        c.set_active_gears(1, SimTime::ZERO);
        assert_eq!(c.gear_state().active, 1);
        // Every object still readable without forced spin-ups.
        for i in 0..100 {
            let req = IoRequest::read(SimTime::from_secs(1), ObjectId(i), 64 << 10);
            let _ = c.serve_request(&req);
        }
        assert_eq!(c.total_forced_spinups(), 0, "gear layout never orphans reads");
    }

    #[test]
    fn gear_zero_cannot_be_powered_off() {
        let mut c = small_cluster();
        c.set_active_gears(0, SimTime::ZERO);
        assert_eq!(c.gear_state().active, 1, "clamped to 1");
    }

    #[test]
    fn writes_offload_to_log_when_gears_down() {
        let mut c = small_cluster();
        c.set_active_gears(1, SimTime::ZERO);
        let before = c.write_log().total_offloaded();
        let req = IoRequest::write(SimTime::from_secs(5), ObjectId(7), 1 << 20);
        let served = c.serve_request(&req);
        // Two replicas (gears 1, 2) off-loaded.
        assert_eq!(c.write_log().total_offloaded() - before, 2 << 20);
        assert!(served.latency.as_secs_f64() < 0.1);
    }

    #[test]
    fn reclaim_replays_after_gear_up() {
        let mut c = small_cluster();
        c.set_active_gears(1, SimTime::ZERO);
        for i in 0..20 {
            let req = IoRequest::write(SimTime::from_secs(i), ObjectId(i), 1 << 20);
            c.serve_request(&req);
        }
        assert!(c.write_log().pending_total() > 0);
        // Nothing reclaimable while gears are down.
        assert_eq!(c.reclaim(u64::MAX, SimTime::from_secs(100)), 0);
        c.set_active_gears(3, SimTime::from_secs(200));
        let replayed = c.reclaim(u64::MAX, SimTime::from_secs(300));
        assert_eq!(replayed, 40 << 20);
        assert_eq!(c.write_log().pending_total(), 0);
        let e = c.end_slot(SimTime::from_hours(1), HOUR);
        assert!(e.reclaim_overhead_wh > 0.0, "replay work attributed");
    }

    #[test]
    fn random_layout_forces_spinups_when_gated() {
        let mut spec = ClusterSpec::small();
        spec.layout = LayoutKind::Random;
        let mut c = Cluster::new(spec);
        c.set_active_gears(1, SimTime::ZERO);
        for i in 0..200 {
            let req = IoRequest::read(SimTime::from_secs(1), ObjectId(i), 64 << 10);
            c.serve_request(&req);
        }
        assert!(c.total_forced_spinups() > 0, "random layout orphans some reads");
    }

    #[test]
    fn slot_energy_drops_when_gears_down() {
        let mut on = small_cluster();
        let e_on = on.end_slot(SimTime::from_hours(1), HOUR);
        let mut off = small_cluster();
        off.set_active_gears(1, SimTime::ZERO);
        // Let the spin-down settle one slot, then measure a clean slot.
        off.end_slot(SimTime::from_hours(1), HOUR);
        let e_off = off.end_slot(SimTime::from_hours(2), HOUR);
        assert!(
            e_off.total_wh() < e_on.total_wh() * 0.55,
            "gated {} vs full {}",
            e_off.total_wh(),
            e_on.total_wh()
        );
    }

    #[test]
    fn idle_and_peak_power_bounds() {
        let c = small_cluster();
        // 6 servers × (110 + 2×8) = 756 W at full idle.
        assert!((c.idle_power_at_gears(3) - 756.0).abs() < 1e-9);
        // Peak: 6 × (220 + 2×11.5) = 1458 W.
        assert!((c.peak_power_at_gears(3) - 1458.0).abs() < 1e-9);
        // One gear: 2 on, 4 off → 2×126 + 4×(6+2) = 284 W idle.
        assert!((c.idle_power_at_gears(1) - 284.0).abs() < 1e-9);
        assert!(c.idle_power_at_gears(1) < c.idle_power_at_gears(2));
        assert!(c.idle_power_at_gears(2) < c.idle_power_at_gears(3));
    }

    #[test]
    fn spinup_overhead_reported_in_slot() {
        let mut c = small_cluster();
        c.set_active_gears(1, SimTime::ZERO);
        c.end_slot(SimTime::from_hours(1), HOUR);
        c.set_active_gears(3, SimTime::from_hours(1));
        let e = c.end_slot(SimTime::from_hours(2), HOUR);
        assert!(e.spinup_overhead_wh > 0.0);
        assert!(c.total_spinups() >= 8, "8 disks spun back up");
    }

    #[test]
    fn failure_generates_rebuild_work_and_routes_around() {
        let mut c = small_cluster();
        let report = c.fail_disk(0, SimTime::from_secs(10));
        assert!(report.affected_objects > 0);
        assert_eq!(report.rebuild_bytes, report.affected_objects as u64 * (16 << 20));
        assert_eq!(report.lost_objects, 0, "replication 3: single failure loses nothing");
        assert!(c.is_rebuilding(0));
        assert_eq!(c.total_failures(), 1);
        // Reads for objects homed on disk 0 are served elsewhere.
        for i in 0..200 {
            let req = IoRequest::read(SimTime::from_secs(20), ObjectId(i), 64 << 10);
            c.serve_request(&req);
        }
        assert_eq!(c.degraded_reads(), 0, "two intact replicas remain");
        // Rebuild and recover.
        c.rebuild_step(0, report.rebuild_bytes, SimTime::from_secs(30));
        c.mark_rebuilt(0);
        assert!(!c.is_rebuilding(0));
    }

    #[test]
    fn correlated_failures_lose_objects() {
        let mut c = small_cluster();
        // Fail one disk per gear; under the gear layout any object whose
        // three replicas land exactly on those disks is exposed.
        let r0 = c.fail_disk(0, SimTime::from_secs(1)); // gear 0
        let r1 = c.fail_disk(4, SimTime::from_secs(2)); // gear 1
        let r2 = c.fail_disk(8, SimTime::from_secs(3)); // gear 2
        assert_eq!(r0.lost_objects + r1.lost_objects, 0, "first two failures survivable");
        // With 12 disks (4 per gear) and 1000 objects, ~1000/64 objects
        // have exactly this replica triple.
        assert!(r2.lost_objects > 0, "triple failure must expose some objects");
        assert_eq!(c.total_lost_objects(), r2.lost_objects as u64);
    }

    #[test]
    fn double_failure_of_same_disk_adds_no_work() {
        let mut c = small_cluster();
        let first = c.fail_disk(3, SimTime::from_secs(1));
        let again = c.fail_disk(3, SimTime::from_secs(2));
        assert!(first.rebuild_bytes > 0);
        assert_eq!(again.rebuild_bytes, 0);
        assert_eq!(c.total_rebuild_bytes(), first.rebuild_bytes);
        assert_eq!(c.total_failures(), 2, "the event is still counted");
    }

    #[test]
    fn all_replicas_rebuilding_degrades_reads() {
        let mut c = small_cluster();
        // Find an object's full replica set and fail it all.
        let replicas = c.directory()[0].replicas.clone();
        let oid = c.directory()[0].id;
        for &d in &replicas {
            c.fail_disk(d, SimTime::from_secs(1));
        }
        let req = IoRequest::read(SimTime::from_secs(5), oid, 64 << 10);
        c.serve_request(&req);
        assert!(c.degraded_reads() >= 1);
    }

    #[test]
    fn cache_serves_repeated_reads_from_ram() {
        let mut spec = ClusterSpec::small();
        spec.cache_bytes = 10 * spec.object_size_bytes;
        let mut c = Cluster::new(spec);
        let req = IoRequest::read(SimTime::from_secs(1), ObjectId(5), 1 << 20);
        let cold = c.serve_request(&req);
        let warm = c.serve_request(&IoRequest::read(SimTime::from_secs(2), ObjectId(5), 1 << 20));
        assert!(warm.latency < cold.latency, "hit beats media");
        assert_eq!(warm.latency, crate::cache::CACHE_HIT_SERVICE);
        assert_eq!(c.cache().hits(), 1);
        assert_eq!(c.cache().misses(), 1);
        // A write invalidates; the next read misses again.
        c.serve_request(&IoRequest::write(SimTime::from_secs(3), ObjectId(5), 1 << 20));
        let after_write =
            c.serve_request(&IoRequest::read(SimTime::from_secs(4), ObjectId(5), 1 << 20));
        assert!(after_write.latency > crate::cache::CACHE_HIT_SERVICE);
        assert_eq!(c.cache().misses(), 2);
    }

    #[test]
    fn zero_cache_changes_nothing() {
        let mut c = small_cluster();
        let r1 = c.serve_request(&IoRequest::read(SimTime::from_secs(1), ObjectId(5), 1 << 20));
        let r2 = c.serve_request(&IoRequest::read(SimTime::from_secs(30), ObjectId(5), 1 << 20));
        // Both reads hit media; service time identical at equal queue state.
        assert_eq!(r1.latency, r2.latency);
        assert_eq!(c.cache().hits() + c.cache().misses(), 0, "disabled cache never probed");
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        // Drive a cluster through gear changes, a failure, cached reads and
        // writes; snapshot; restore onto a fresh cluster over the same
        // layout; both must then serve identical traffic identically.
        let mut spec = ClusterSpec::small();
        spec.cache_bytes = 10 * spec.object_size_bytes;
        let layout = Arc::new(ClusterLayout::new(spec));
        let mut a = Cluster::from_layout(layout.clone());
        a.set_active_gears(1, SimTime::ZERO);
        for i in 0..50 {
            a.serve_request(&IoRequest::read(SimTime::from_secs(i), ObjectId(i), 1 << 20));
            a.serve_request(&IoRequest::write(SimTime::from_secs(i), ObjectId(i + 50), 1 << 20));
        }
        a.fail_disk(2, SimTime::from_secs(60));
        a.end_slot(SimTime::from_hours(1), HOUR);

        let snap = a.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serialises");
        let snap2: ClusterSnapshot = serde_json::from_str(&json).expect("snapshot deserialises");
        let mut b = Cluster::from_layout(layout);
        b.restore_state(&snap2).expect("same topology restores");

        assert_eq!(b.gear_state(), a.gear_state());
        assert_eq!(b.total_failures(), a.total_failures());
        assert!(b.is_rebuilding(2));
        for i in 0..100 {
            let req = IoRequest::read(
                SimTime::from_hours(1) + SimDuration::from_secs(i),
                ObjectId(i),
                1 << 20,
            );
            let ra = a.serve_request(&req);
            let rb = b.serve_request(&req);
            assert_eq!(ra, rb, "request {i} diverged after restore");
        }
        let ea = a.end_slot(SimTime::from_hours(2), HOUR);
        let eb = b.end_slot(SimTime::from_hours(2), HOUR);
        assert_eq!(ea.total_wh().to_bits(), eb.total_wh().to_bits());
        assert_eq!(a.cache().hits(), b.cache().hits());
    }

    #[test]
    fn snapshot_rejects_mismatched_topology() {
        let a = small_cluster();
        let snap = a.snapshot();
        let mut spec = ClusterSpec::small();
        spec.topology = Topology::new(3, 2, 3);
        let mut b = Cluster::new(spec);
        assert!(b.restore_state(&snap).is_err());
    }

    /// A small cluster with tiering on and every object already demoted to
    /// `k + m` erasure coding (no traffic → the whole fleet cools).
    fn tiered_cluster_all_cold(k: usize, m: usize) -> Cluster {
        let mut c = Cluster::new(ClusterSpec::small());
        c.enable_tiering(EwmaParams::default(), 1.0, k, m);
        for _ in 0..8 {
            let step = c.tier_step(1.0, usize::MAX);
            if !step.demote.is_empty() {
                c.complete_migration(&step.demote, true);
            }
        }
        assert_eq!(c.ec_objects(), 1_000, "idle fleet fully demoted");
        c
    }

    #[test]
    fn demotion_halves_capacity_and_reads_fan_in() {
        let mut c = Cluster::new(ClusterSpec::small());
        c.enable_tiering(EwmaParams::default(), 1.0, 4, 2);
        let replicated = c.capacity_in_use_bytes();
        assert_eq!(replicated, 1_000 * 3 * (16 << 20));
        let mut c = tiered_cluster_all_cold(4, 2);
        // 4+2 EC at 4 MiB shards: 24 MiB per object vs 48 MiB replicated.
        assert_eq!(c.capacity_in_use_bytes(), 1_000 * 6 * (4 << 20));
        match c.placement_of(0) {
            Placement::Erasure { k, m, shards } => {
                assert_eq!((k, m), (4, 2));
                let mut sorted = shards.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 6, "shard disks distinct: {shards:?}");
            }
            p => panic!("object 0 should be EC, got {p:?}"),
        }
        // Reads still served, no degradation, cache fill intact.
        let served = c.serve_request(&IoRequest::read(SimTime::from_secs(1), ObjectId(0), 1 << 20));
        assert!(served.latency.as_secs_f64() < 0.2);
        assert_eq!(c.degraded_reads(), 0);
    }

    #[test]
    fn ec_survives_m_failures_and_rebuilds() {
        let mut c = tiered_cluster_all_cold(4, 2);
        let shards = match c.placement_of(0) {
            Placement::Erasure { shards, .. } => shards,
            _ => unreachable!(),
        };
        let shard_bytes = (16u64 << 20).div_ceil(4);
        let mut reports = vec![];
        for &d in shards.iter().take(2) {
            reports.push(c.fail_disk(d, SimTime::from_secs(1)));
        }
        // Any object has at most 2 shards on 2 disks: m = 2 tolerated.
        assert_eq!(c.total_lost_objects(), 0, "m shard losses lose nothing");
        // Rebuilding one lost shard reads k survivors + writes 1.
        assert!(reports[0].rebuild_bytes >= (4 + 1) * shard_bytes);
        assert!(reports[0].affected_objects > 0);
        for (i, &d) in shards.iter().take(2).enumerate() {
            c.rebuild_step(d, reports[i].rebuild_bytes, SimTime::from_secs(10));
            c.mark_rebuilt(d);
            assert!(!c.is_rebuilding(d));
        }
        // Fully healed: reads are clean again.
        c.serve_request(&IoRequest::read(SimTime::from_secs(20), ObjectId(0), 1 << 20));
        assert_eq!(c.degraded_reads(), 0);
    }

    #[test]
    fn ec_m_plus_one_failures_expose_objects() {
        let mut c = tiered_cluster_all_cold(4, 2);
        let shards = match c.placement_of(0) {
            Placement::Erasure { shards, .. } => shards,
            _ => unreachable!(),
        };
        for &d in shards.iter().take(3) {
            c.fail_disk(d, SimTime::from_secs(1));
        }
        assert!(c.total_lost_objects() >= 1, "m+1 = 3 shard losses must expose at least object 0");
    }

    #[test]
    fn ec_degraded_read_while_all_shards_pending() {
        let mut c = tiered_cluster_all_cold(4, 2);
        let shards = match c.placement_of(0) {
            Placement::Erasure { shards, .. } => shards,
            _ => unreachable!(),
        };
        for &d in &shards {
            c.fail_disk(d, SimTime::from_secs(1));
        }
        let before = c.degraded_reads();
        c.serve_request(&IoRequest::read(SimTime::from_secs(5), ObjectId(0), 1 << 20));
        assert!(c.degraded_reads() > before, "all-shards-pending read is degraded");
    }

    #[test]
    fn hot_ec_object_promotes_back_to_replication() {
        let mut c = tiered_cluster_all_cold(4, 2);
        let cap_cold = c.capacity_in_use_bytes();
        // Hammer object 0 until the classifier calls it hot again.
        let mut promoted = false;
        for slot in 0..10 {
            for i in 0..20u64 {
                c.serve_request(&IoRequest::read(
                    SimTime::from_secs(slot * 3600 + i),
                    ObjectId(0),
                    64 << 10,
                ));
            }
            let step = c.tier_step(1.0, 8);
            if step.promote.contains(&0) {
                assert!(step.promote_bytes > 0);
                let (released, written) = c.complete_migration(&step.promote, false);
                assert_eq!(released, step.promote.len() as u64 * 6 * (4 << 20));
                assert_eq!(written, step.promote.len() as u64 * 3 * (16 << 20));
                promoted = true;
                break;
            }
        }
        assert!(promoted, "sustained traffic must promote the object");
        assert!(matches!(c.placement_of(0), Placement::Replicated { .. }));
        assert!(c.capacity_in_use_bytes() > cap_cold);
    }

    #[test]
    fn tier_step_respects_budget_and_ceiling() {
        let mut c = Cluster::new(ClusterSpec::small());
        c.enable_tiering(EwmaParams::default(), 0.1, 4, 2);
        let mut demoted = 0usize;
        for _ in 0..20 {
            let step = c.tier_step(1.0, 7);
            assert!(step.demote.len() <= 7, "per-slot budget respected");
            demoted += step.demote.len();
            c.complete_migration(&step.demote, true);
        }
        assert_eq!(demoted, 100, "cold-fraction ceiling caps demotion at 10%");
        assert_eq!(c.ec_objects(), 100);
    }

    #[test]
    fn tiering_snapshot_roundtrips_and_rejects_mismatch() {
        let mut a = tiered_cluster_all_cold(4, 2);
        a.serve_request(&IoRequest::read(SimTime::from_secs(1), ObjectId(3), 1 << 20));
        let snap = a.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let snap2: ClusterSnapshot = serde_json::from_str(&json).unwrap();
        let mut b = Cluster::from_layout(a.layout().clone());
        b.enable_tiering(EwmaParams::default(), 1.0, 4, 2);
        b.restore_state(&snap2).expect("tiering-on snapshot restores");
        assert_eq!(b.ec_objects(), a.ec_objects());
        assert_eq!(b.capacity_in_use_bytes(), a.capacity_in_use_bytes());
        assert_eq!(b.placement_of(5), a.placement_of(5));
        // Tiering-off cluster refuses a tiering-on snapshot and vice versa.
        let mut off = Cluster::from_layout(a.layout().clone());
        assert!(off.restore_state(&snap2).is_err());
        let off_snap = Cluster::from_layout(a.layout().clone()).snapshot();
        let mut on = Cluster::from_layout(a.layout().clone());
        on.enable_tiering(EwmaParams::default(), 1.0, 4, 2);
        assert!(on.restore_state(&off_snap).is_err());
    }

    #[test]
    fn tiering_off_snapshot_has_no_tiering_field() {
        let c = small_cluster();
        let json = serde_json::to_string(&c.snapshot()).unwrap();
        assert!(!json.contains("tiering"), "absent field keeps v1 snapshots byte-identical");
    }

    #[test]
    fn sequential_work_lands_on_disk() {
        let mut c = small_cluster();
        let served = c.add_sequential_work(0, 1 << 30, SimTime::from_secs(1));
        // 1 GiB at 140 MB/s ≈ 7.7 s.
        assert!(served.latency.as_secs_f64() > 7.0 && served.latency.as_secs_f64() < 8.5);
        let e = c.end_slot(SimTime::from_hours(1), HOUR);
        assert!(e.disks_wh > 0.0);
    }
}
