//! Server power model.
//!
//! The CPU/board side of a storage server follows the era-standard linear
//! model: an idle server burns roughly **half of its peak** power, and the
//! dynamic part grows linearly with CPU utilisation. Disks are accounted
//! separately (see [`crate::disk`]); a *powered-off* server draws only a
//! small standby (BMC/vampire) power and its disks are necessarily in
//! standby too.
//!
//! Defaults model a dual-socket 2U storage node of the era: 220 W peak,
//! 110 W idle, 6 W off/standby.

use serde::{Deserialize, Serialize};

/// Static server characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Power at 100 % CPU utilisation, excluding disks (W).
    pub peak_w: f64,
    /// Power at 0 % utilisation while on (W).
    pub idle_w: f64,
    /// Power while the server is shut down (BMC etc.) (W).
    pub off_w: f64,
    /// Number of disk bays.
    pub disk_bays: usize,
    /// Energy cost of one power-on cycle (J): POST + OS boot at near-peak.
    pub poweron_extra_j: f64,
    /// Latency of a power-on cycle (s).
    pub poweron_latency_s: f64,
}

impl ServerSpec {
    /// Era-typical 2U storage node with 4 data disks.
    pub fn storage_node() -> Self {
        ServerSpec {
            peak_w: 220.0,
            idle_w: 110.0,
            off_w: 6.0,
            disk_bays: 4,
            poweron_extra_j: 13_200.0, // ~60 s boot at ~220 W
            poweron_latency_s: 60.0,
        }
    }

    /// CPU-side power (W) at utilisation `u ∈ [0,1]` while on.
    pub fn power_at(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u
    }

    /// Power-on surcharge in Wh.
    pub fn poweron_extra_wh(&self) -> f64 {
        self.poweron_extra_j / 3600.0
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec::storage_node()
    }
}

/// A server: spec + on/off state + cumulative accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    spec: ServerSpec,
    powered_on: bool,
    poweron_count: u64,
    energy_wh: f64,
    poweron_energy_wh: f64,
}

impl Server {
    /// A new, powered-on server.
    pub fn new(spec: ServerSpec) -> Self {
        Server { spec, powered_on: true, poweron_count: 0, energy_wh: 0.0, poweron_energy_wh: 0.0 }
    }

    /// The static spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Whether the server is on.
    pub fn is_on(&self) -> bool {
        self.powered_on
    }

    /// Power the server on; returns `true` if it was off (and charges the
    /// boot surcharge).
    pub fn power_on(&mut self) -> bool {
        if self.powered_on {
            return false;
        }
        self.powered_on = true;
        self.poweron_count += 1;
        self.poweron_energy_wh += self.spec.poweron_extra_wh();
        self.energy_wh += self.spec.poweron_extra_wh();
        true
    }

    /// Power the server off; returns `true` if it was on.
    pub fn power_off(&mut self) -> bool {
        if !self.powered_on {
            return false;
        }
        self.powered_on = false;
        true
    }

    /// Average CPU-side power over a slot at mean utilisation `u`.
    pub fn power_in_slot(&self, u: f64) -> f64 {
        if self.powered_on {
            self.spec.power_at(u)
        } else {
            self.spec.off_w
        }
    }

    /// Integrate one slot of CPU-side energy at mean utilisation `u`.
    /// Returns the energy added (Wh).
    pub fn account_slot(&mut self, u: f64, slot_hours: f64) -> f64 {
        let wh = self.power_in_slot(u) * slot_hours;
        self.energy_wh += wh;
        wh
    }

    /// Number of power-on cycles.
    pub fn poweron_count(&self) -> u64 {
        self.poweron_count
    }

    /// Total CPU-side energy so far (Wh).
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Cumulative boot-surcharge energy (Wh).
    pub fn poweron_energy_wh(&self) -> f64 {
        self.poweron_energy_wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_half_of_peak() {
        let s = ServerSpec::storage_node();
        assert!((s.power_at(0.0) / s.power_at(1.0) - 0.5).abs() < 1e-12);
        assert!((s.power_at(0.5) - 165.0).abs() < 1e-12);
    }

    #[test]
    fn utilisation_is_clamped() {
        let s = ServerSpec::storage_node();
        assert_eq!(s.power_at(-1.0), s.power_at(0.0));
        assert_eq!(s.power_at(2.0), s.power_at(1.0));
    }

    #[test]
    fn power_cycle_accounting() {
        let mut srv = Server::new(ServerSpec::storage_node());
        assert!(srv.is_on());
        assert!(!srv.power_on(), "already on");
        assert!(srv.power_off());
        assert!(!srv.power_off(), "already off");
        assert_eq!(srv.power_in_slot(0.9), 6.0, "off power ignores utilisation");
        assert!(srv.power_on());
        assert_eq!(srv.poweron_count(), 1);
        assert!((srv.poweron_energy_wh() - 13_200.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn slot_energy_integration() {
        let mut srv = Server::new(ServerSpec::storage_node());
        let wh = srv.account_slot(0.0, 1.0);
        assert!((wh - 110.0).abs() < 1e-12);
        srv.power_off();
        let wh_off = srv.account_slot(0.5, 1.0);
        assert!((wh_off - 6.0).abs() < 1e-12);
        assert!((srv.energy_wh() - 116.0).abs() < 1e-12);
    }
}
