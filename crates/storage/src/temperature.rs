//! Temperature classification for tiered storage.
//!
//! Production blobstores track per-extent access temperature and keep hot
//! data on replication while migrating cold data to erasure coding. This
//! module supplies the classifier half: per-object access-rate estimation
//! (EWMA over serve hits, folded once per slot) and a hot/warm/cold
//! classification with hysteresis so objects do not flap across the
//! migration boundary.
//!
//! The estimator is behind a small trait shaped like a hidden-state filter
//! (`observe` new evidence, then `classify` the latent temperature), so a
//! genuine HMM posterior can replace the EWMA without touching callers.

use serde::{Deserialize, Serialize};

/// Latent access temperature of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Temperature {
    /// Recently and frequently read: keep on replication.
    Hot,
    /// In the hysteresis band: stay wherever it is.
    Warm,
    /// Access rate below the cold threshold: eligible for erasure coding.
    Cold,
}

/// Parameters of the EWMA classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaParams {
    /// Per-slot smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    /// Rate (hits/hour) at or above which an object turns hot.
    pub hot_rate: f64,
    /// Rate (hits/hour) at or below which an object turns cold.
    pub cold_rate: f64,
}

impl Default for EwmaParams {
    fn default() -> Self {
        EwmaParams { alpha: 0.3, hot_rate: 2.0, cold_rate: 0.2 }
    }
}

/// A swappable temperature estimator: feed per-slot hit counts, read back a
/// classification. Implementations must be deterministic in the observation
/// sequence.
pub trait TemperatureEstimator {
    /// Fold `hits` observed over `hours` into object `obj`'s state.
    fn observe(&mut self, obj: usize, hits: u32, hours: f64);
    /// Classify `obj` given its previous temperature (for hysteresis).
    fn classify(&self, obj: usize, prev: Temperature) -> Temperature;
}

/// EWMA-threshold estimator with a sticky warm band.
///
/// The smoothed rate `r` moves toward the slot's observed hits/hour by
/// factor `alpha`. Transitions:
///
/// * from Hot: drop to Warm only when `r <= cold_rate` (a hot object must
///   fall all the way through the band before it can start cooling);
/// * from Warm: up to Hot at `r >= hot_rate`, down to Cold at
///   `r <= cold_rate`;
/// * from Cold: back to Hot only at `r >= hot_rate` (promotion is a full
///   re-replication, so it demands clear evidence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    /// Thresholds and smoothing.
    pub params: EwmaParams,
    /// Smoothed per-object access rate, hits/hour.
    pub rate: Vec<f64>,
}

impl EwmaEstimator {
    /// Estimator over `objects` objects, all starting mid-band (geometric
    /// mean of the thresholds) so slot 1 does not demote the whole fleet.
    pub fn new(params: EwmaParams, objects: usize) -> Self {
        assert!(params.alpha > 0.0 && params.alpha <= 1.0, "alpha must be in (0,1]");
        assert!(
            params.cold_rate < params.hot_rate,
            "hysteresis needs cold_rate ({}) < hot_rate ({})",
            params.cold_rate,
            params.hot_rate
        );
        let mid = (params.hot_rate * params.cold_rate).sqrt();
        EwmaEstimator { params, rate: vec![mid; objects] }
    }
}

impl TemperatureEstimator for EwmaEstimator {
    fn observe(&mut self, obj: usize, hits: u32, hours: f64) {
        debug_assert!(hours > 0.0);
        let observed = f64::from(hits) / hours;
        let r = &mut self.rate[obj];
        *r += self.params.alpha * (observed - *r);
    }

    fn classify(&self, obj: usize, prev: Temperature) -> Temperature {
        let r = self.rate[obj];
        let p = &self.params;
        match prev {
            Temperature::Hot => {
                if r <= p.cold_rate {
                    Temperature::Warm
                } else {
                    Temperature::Hot
                }
            }
            Temperature::Warm => {
                if r >= p.hot_rate {
                    Temperature::Hot
                } else if r <= p.cold_rate {
                    Temperature::Cold
                } else {
                    Temperature::Warm
                }
            }
            Temperature::Cold => {
                if r >= p.hot_rate {
                    Temperature::Hot
                } else {
                    Temperature::Cold
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(objects: usize) -> EwmaEstimator {
        EwmaEstimator::new(EwmaParams::default(), objects)
    }

    #[test]
    fn idle_object_cools_through_the_band() {
        let mut e = est(1);
        let mut t = Temperature::Warm;
        let mut path = vec![];
        for _ in 0..40 {
            e.observe(0, 0, 1.0);
            t = e.classify(0, t);
            path.push(t);
        }
        assert_eq!(*path.last().unwrap(), Temperature::Cold);
        // Monotone: once cold it stays cold with zero traffic.
        let first_cold = path.iter().position(|&x| x == Temperature::Cold).unwrap();
        assert!(path[first_cold..].iter().all(|&x| x == Temperature::Cold));
    }

    #[test]
    fn busy_object_heats_and_hysteresis_holds_it() {
        let mut e = est(1);
        let mut t = Temperature::Warm;
        for _ in 0..10 {
            e.observe(0, 10, 1.0);
            t = e.classify(0, t);
        }
        assert_eq!(t, Temperature::Hot);
        // A few quiet slots: rate decays but stays above cold_rate → still Hot.
        e.observe(0, 0, 1.0);
        t = e.classify(0, t);
        assert_eq!(t, Temperature::Hot, "one quiet slot must not demote a hot object");
    }

    #[test]
    fn cold_object_needs_full_hot_evidence_to_promote() {
        let mut e = est(1);
        let mut t = Temperature::Cold;
        e.rate[0] = 0.0;
        // Mild traffic between the thresholds never promotes.
        for _ in 0..50 {
            e.observe(0, 1, 1.0);
            t = e.classify(0, t);
        }
        assert_eq!(t, Temperature::Cold);
        // Heavy traffic does.
        for _ in 0..10 {
            e.observe(0, 20, 1.0);
            t = e.classify(0, t);
        }
        assert_eq!(t, Temperature::Hot);
    }

    #[test]
    fn estimator_is_deterministic_and_serializable() {
        let mut a = est(4);
        let mut b = est(4);
        for slot in 0..8u32 {
            for o in 0..4 {
                a.observe(o, slot % 3, 1.0);
                b.observe(o, slot % 3, 1.0);
            }
        }
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: EwmaEstimator = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    #[should_panic(expected = "cold_rate")]
    fn inverted_thresholds_panic() {
        let _ = EwmaEstimator::new(EwmaParams { alpha: 0.5, hot_rate: 0.1, cold_rate: 1.0 }, 1);
    }
}
