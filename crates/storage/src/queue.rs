//! Per-disk FCFS service timelines.
//!
//! Rather than a global event heap, each disk keeps a *timeline cursor*
//! (`next_free`): a request arriving at `a` with service time `s` starts at
//! `max(a, next_free, disk_ready_at)` and completes `s` later. This yields
//! exact FCFS latencies (queueing + head positioning + transfer + any
//! spin-up stall) in O(1) per request, and backlog carries naturally across
//! slot boundaries because the cursor persists.
//!
//! The queue also integrates per-slot *busy time* so the disk's energy
//! accounting can blend active and idle power correctly even when service
//! intervals straddle slot boundaries.

use gm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of serving one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedRequest {
    /// When service began.
    pub start: SimTime,
    /// When service completed.
    pub completion: SimTime,
    /// Total latency (completion − arrival).
    pub latency: SimDuration,
}

/// FCFS timeline of one disk.
///
/// Two classes share the disk:
///
/// * **Foreground** (interactive) requests go through the FCFS timeline and
///   experience exact queueing latency.
/// * **Background** (batch, reclaim) work is assumed to be perfectly
///   preemptible by the I/O scheduler: it consumes busy time (and therefore
///   energy and capacity) without blocking the foreground queue. Its
///   *interference* with foreground service is modeled by inflating
///   foreground service times by the M/G/1-style factor `1/(1−ρ_bg)`,
///   where `ρ_bg` is the background utilisation accumulated in the current
///   slot — bounded at [`MAX_BG_RHO`] so latency stays finite.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskQueue {
    /// Earliest instant the disk head is free (foreground timeline).
    next_free: SimTime,
    /// Cumulative busy time not yet drained by `take_busy_in`.
    busy_acc: SimDuration,
    /// Background busy time accumulated since the last `end_slot` drain,
    /// used for the interference factor.
    bg_in_slot: SimDuration,
    /// High-water mark of (completion − arrival) backlog, for diagnostics.
    served: u64,
}

/// Cap on the background utilisation used in the interference factor.
pub const MAX_BG_RHO: f64 = 0.85;

impl DiskQueue {
    /// An empty timeline.
    pub fn new() -> Self {
        DiskQueue::default()
    }

    /// Earliest instant the disk is free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Current queueing delay a request arriving at `now` would see before
    /// its service starts.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_sub(now)
    }

    /// Serve a foreground request arriving at `arrival` with nominal
    /// service time `service`, on a disk that is ready from `ready_at`
    /// (spin-up stall is modeled by passing the disk's ready instant).
    /// The effective service time is inflated by background interference
    /// (see the type docs); pass `slot_width` so ρ_bg can be computed.
    pub fn serve(
        &mut self,
        arrival: SimTime,
        ready_at: SimTime,
        service: SimDuration,
        slot_width: SimDuration,
    ) -> ServedRequest {
        // Fast path: no background work this slot means ρ_bg = 0 and the
        // inflation is exactly the identity (`from_secs_f64` round-trips
        // whole microseconds), so skip the float conversions.
        let effective = if self.bg_in_slot == SimDuration::ZERO {
            service
        } else {
            let rho = (self.bg_in_slot.as_secs_f64() / slot_width.as_secs_f64()).min(MAX_BG_RHO);
            SimDuration::from_secs_f64(service.as_secs_f64() / (1.0 - rho))
        };
        let start = arrival.max(self.next_free).max(ready_at);
        let completion = start + effective;
        self.next_free = completion;
        self.busy_acc += effective;
        self.served += 1;
        ServedRequest { start, completion, latency: completion.duration_since(arrival) }
    }

    /// Add preemptible background work (batch scans, reclaim replay) that
    /// consumes capacity and energy without entering the foreground queue.
    /// Returns the nominal completion instant assuming the work streams at
    /// full rate from `max(now, ready_at)`.
    pub fn add_background(
        &mut self,
        now: SimTime,
        ready_at: SimTime,
        service: SimDuration,
    ) -> ServedRequest {
        let start = now.max(ready_at);
        let completion = start + service;
        self.busy_acc += service;
        self.bg_in_slot += service;
        self.served += 1;
        ServedRequest { start, completion, latency: completion.duration_since(now) }
    }

    /// Drain the accumulated busy time, capped at `cap` (the slot width),
    /// and reset the background-interference window. Call at slot ends.
    ///
    /// Busy time beyond the cap stays accumulated and drains in later slots
    /// — a deliberately simple way to spread overload energy across the
    /// slots in which the disk is actually grinding through its backlog.
    pub fn take_busy_in(&mut self, cap: SimDuration) -> SimDuration {
        let take = self.busy_acc.min(cap);
        self.busy_acc -= take;
        self.bg_in_slot = SimDuration::ZERO;
        take
    }

    /// Busy time accumulated and not yet drained.
    pub fn pending_busy(&self) -> SimDuration {
        self.busy_acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration(gm_sim::time::MICROS_PER_HOUR);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn idle_disk_serves_immediately() {
        let mut q = DiskQueue::new();
        let r = q.serve(t(10), SimTime::ZERO, d(2), HOUR);
        assert_eq!(r.start, t(10));
        assert_eq!(r.completion, t(12));
        assert_eq!(r.latency, d(2));
    }

    #[test]
    fn fcfs_queueing_accumulates() {
        let mut q = DiskQueue::new();
        q.serve(t(0), SimTime::ZERO, d(5), HOUR);
        let r2 = q.serve(t(1), SimTime::ZERO, d(5), HOUR);
        assert_eq!(r2.start, t(5), "waits for the head");
        assert_eq!(r2.latency, d(9));
        assert_eq!(q.backlog_at(t(2)), d(8));
        assert_eq!(q.served(), 2);
    }

    #[test]
    fn spinup_stall_delays_start() {
        let mut q = DiskQueue::new();
        let r = q.serve(t(0), t(10), d(1), HOUR);
        assert_eq!(r.start, t(10), "stalls until the disk is ready");
        assert_eq!(r.latency, d(11));
    }

    #[test]
    fn later_arrival_after_idle_gap() {
        let mut q = DiskQueue::new();
        q.serve(t(0), SimTime::ZERO, d(1), HOUR);
        let r = q.serve(t(100), SimTime::ZERO, d(1), HOUR);
        assert_eq!(r.start, t(100));
        assert_eq!(r.latency, d(1));
    }

    #[test]
    fn background_work_does_not_block_foreground_queue() {
        let mut q = DiskQueue::new();
        let bg = q.add_background(t(0), SimTime::ZERO, d(600));
        assert_eq!(bg.completion, t(600));
        // Foreground arrives during the background stream: no queueing,
        // only the interference inflation.
        let fg = q.serve(t(10), SimTime::ZERO, d(1), HOUR);
        assert_eq!(fg.start, t(10));
        // ρ_bg = 600/3600 ≈ 0.1667 → service ≈ 1.2 s.
        let lat = fg.latency.as_secs_f64();
        assert!((lat - 1.2).abs() < 0.01, "inflated latency {lat}");
    }

    #[test]
    fn interference_is_bounded() {
        let mut q = DiskQueue::new();
        // 10 hours of background in one slot: ρ clamps at MAX_BG_RHO.
        q.add_background(t(0), SimTime::ZERO, SimDuration::from_hours(10));
        let fg = q.serve(t(1), SimTime::ZERO, d(1), HOUR);
        let lat = fg.latency.as_secs_f64();
        assert!((lat - 1.0 / (1.0 - MAX_BG_RHO)).abs() < 0.01, "clamped {lat}");
    }

    #[test]
    fn interference_window_resets_each_slot() {
        let mut q = DiskQueue::new();
        q.add_background(t(0), SimTime::ZERO, d(1800));
        q.take_busy_in(HOUR);
        // New slot: no interference left.
        let fg = q.serve(t(4000), SimTime::ZERO, d(1), HOUR);
        assert_eq!(fg.latency, d(1));
    }

    #[test]
    fn busy_time_drains_with_cap() {
        let mut q = DiskQueue::new();
        q.serve(t(0), SimTime::ZERO, d(90), HOUR);
        // One hour slot cap, busy 90 s: all drains at once.
        assert_eq!(q.take_busy_in(SimDuration::from_hours(1)), d(90));
        assert_eq!(q.take_busy_in(SimDuration::from_hours(1)), SimDuration::ZERO);
        // Overload: 2 h of background drains one hour per slot.
        q.add_background(t(200), SimTime::ZERO, SimDuration::from_hours(2));
        assert_eq!(q.take_busy_in(SimDuration::from_hours(1)), SimDuration::from_hours(1));
        assert_eq!(q.pending_busy(), SimDuration::from_hours(1));
        assert_eq!(q.take_busy_in(SimDuration::from_hours(1)), SimDuration::from_hours(1));
        assert_eq!(q.pending_busy(), SimDuration::ZERO);
    }

    #[test]
    fn backlog_zero_when_free() {
        let q = DiskQueue::new();
        assert_eq!(q.backlog_at(t(5)), SimDuration::ZERO);
    }
}
