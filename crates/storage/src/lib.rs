//! # gm-storage — massive storage system substrate
//!
//! Models the storage cluster GreenMatch schedules: servers full of disks,
//! replicated data laid out so that subsets of the cluster can be powered
//! down without losing availability, per-disk FCFS service with realistic
//! seek/rotate/transfer times, spin-up/spin-down state machines with their
//! energy surcharges, and a write-offloading log that absorbs writes aimed
//! at powered-down replicas.
//!
//! Module map:
//!
//! * [`disk`] — the disk power/performance model (Active/Idle/Standby +
//!   spin-up transitions, service times).
//! * [`server`] — server CPU power model ("idle burns half of peak") and
//!   whole-server power gating.
//! * [`object`] — data objects and replica metadata.
//! * [`layout`] — replica placement: **gear layout** (replica *r* in gear
//!   group *r*, the power-proportional design), plus random, chained
//!   declustering and copyset baselines for the layout ablation.
//! * [`cluster`] — the assembled cluster: topology, directory, gear
//!   controller, routing of reads to the lowest active replica, per-slot
//!   power integration.
//! * [`queue`] — per-disk FCFS timelines producing exact per-request
//!   latencies, with backlog carried across slot boundaries.
//! * [`writelog`] — write off-loading for powered-down gears and the
//!   reclaim (replay) bookkeeping.
//! * [`request`] — I/O request types.
//! * [`temperature`] — hot/warm/cold classification (EWMA with hysteresis)
//!   driving replicated↔erasure-coded tier migration.
//!
//! Power is in watts, energy in watt-hours, sizes in bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod disk;
pub mod failure;
pub mod layout;
pub mod object;
pub mod queue;
pub mod request;
pub mod server;
pub mod temperature;
pub mod writelog;

pub use cache::LruCache;
pub use cluster::{Cluster, ClusterLayout, ClusterSnapshot, ClusterSpec, GearState};
pub use disk::{Disk, DiskPowerState, DiskSpec};
pub use failure::{FailureDice, FailureReport, FailureSpec, HOURS_PER_YEAR};
pub use layout::{
    ChainedDeclustering, CopysetLayout, GearLayout, Layout, LayoutKind, RandomLayout, Topology,
};
pub use object::{DataObject, ObjectId, Placement};
pub use queue::{DiskQueue, ServedRequest};
pub use request::{IoKind, IoRequest};
pub use server::{Server, ServerSpec};
pub use temperature::{EwmaEstimator, EwmaParams, Temperature, TemperatureEstimator};
pub use writelog::WriteLog;
