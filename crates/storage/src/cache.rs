//! Cluster read cache.
//!
//! Storage frontends keep a RAM cache; with Zipf-skewed object popularity
//! a modest cache absorbs a disproportionate share of reads, which matters
//! here twice: cache hits cost (almost) no disk busy time — less energy —
//! and they bypass the spin-up/queueing path entirely — better tails when
//! gears are parked.
//!
//! The model is an **object-granular LRU** over the aggregate RAM of the
//! always-on (gear 0) servers: reads probe it first; a miss inserts the
//! object after the disk read; writes invalidate (write-around). Hits are
//! served at a flat RAM service time.

use crate::object::ObjectId;
use gm_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Service time of a cache hit (network/CPU bound, not media bound).
pub const CACHE_HIT_SERVICE: SimDuration = SimDuration(200); // 200 µs

/// Sentinel "no node" link.
const NIL: u32 = u32::MAX;

/// One entry in the intrusive recency list.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    key: u64,
    bytes: u64,
    prev: u32,
    next: u32,
}

/// An LRU cache over whole objects.
///
/// Recency is an intrusive doubly-linked list threaded through a node
/// arena: a probe hit is one array load plus four link writes, where the
/// historic tick/`BTreeMap` design paid two tree mutations per touch.
/// Object ids are dense small integers (directory indices), so the
/// object → node lookup is a direct-indexed slot table rather than a hash
/// map — this sits on the cluster's per-request hot path, and hashing was
/// the single largest cost in it; the hit/miss/eviction sequence is
/// identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// Object id → node index, direct-indexed (`NIL` = not cached). Grows
    /// to the largest object id ever inserted — bounded by the directory.
    slots: Vec<u32>,
    /// Objects currently cached (`slots` entries that are not `NIL`).
    live: usize,
    /// Node arena; `free` lists recycled slots.
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Most-recently-used node (`NIL` when empty).
    head: u32,
    /// Least-recently-used node — the eviction end (`NIL` when empty).
    tail: u32,
    hits: u64,
    misses: u64,
}

impl Default for LruCache {
    fn default() -> Self {
        LruCache::new(0)
    }
}

impl LruCache {
    /// A cache of the given capacity; zero capacity disables it.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            slots: Vec::new(),
            live: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether the cache is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all probes (0 when never probed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Detach node `n` from the recency list (links only; `index`, byte
    /// accounting, and the free list are the caller's business).
    fn unlink(&mut self, n: u32) {
        let (prev, next) = {
            let node = &self.nodes[n as usize];
            (node.prev, node.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Link node `n` at the MRU end.
    fn push_front(&mut self, n: u32) {
        self.nodes[n as usize].prev = NIL;
        self.nodes[n as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = n;
        }
        self.head = n;
        if self.tail == NIL {
            self.tail = n;
        }
    }

    fn touch(&mut self, n: u32) {
        if self.head == n {
            return;
        }
        self.unlink(n);
        self.push_front(n);
    }

    /// Node index for `object`, `NIL` if not cached.
    #[inline]
    fn lookup(&self, id: u64) -> u32 {
        self.slots.get(id as usize).copied().unwrap_or(NIL)
    }

    /// Remove the LRU node, returning its freed byte count.
    fn pop_tail(&mut self) -> u64 {
        let victim = self.tail;
        debug_assert!(victim != NIL, "pop_tail on empty list");
        self.unlink(victim);
        let node = &self.nodes[victim as usize];
        let bytes = node.bytes;
        self.slots[node.key as usize] = NIL;
        self.live -= 1;
        self.free.push(victim);
        bytes
    }

    /// Probe for a read of `object`. Counts a hit or a miss.
    pub fn probe(&mut self, object: ObjectId) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let n = self.lookup(object.0);
        if n != NIL {
            self.touch(n);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `object` of `bytes` after a miss, evicting LRU entries to
    /// fit. Objects larger than the whole cache are not admitted.
    pub fn insert(&mut self, object: ObjectId, bytes: u64) {
        if !self.is_enabled() || bytes > self.capacity_bytes {
            return;
        }
        let existing = self.lookup(object.0);
        if existing != NIL {
            self.touch(existing);
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let freed = self.pop_tail();
            self.used_bytes -= freed;
        }
        let n = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { key: object.0, bytes, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.nodes.push(Node { key: object.0, bytes, prev: NIL, next: NIL });
                (self.nodes.len() - 1) as u32
            }
        };
        let idx = object.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, NIL);
        }
        self.slots[idx] = n;
        self.live += 1;
        self.push_front(n);
        self.used_bytes += bytes;
    }

    /// Invalidate a (possibly cached) object — called on writes.
    pub fn invalidate(&mut self, object: ObjectId) {
        let n = self.lookup(object.0);
        if n != NIL {
            self.slots[object.0 as usize] = NIL;
            self.live -= 1;
            self.unlink(n);
            self.used_bytes -= self.nodes[n as usize].bytes;
            self.free.push(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = LruCache::new(0);
        assert!(!c.is_enabled());
        assert!(!c.probe(oid(1)));
        c.insert(oid(1), 10);
        assert!(!c.probe(oid(1)));
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(100);
        assert!(!c.probe(oid(1)), "cold miss");
        c.insert(oid(1), 40);
        assert!(c.probe(oid(1)), "warm hit");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.used_bytes(), 40);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 40);
        c.insert(oid(2), 40);
        // Touch 1 so 2 becomes LRU.
        assert!(c.probe(oid(1)));
        c.insert(oid(3), 40); // evicts 2
        assert!(c.probe(oid(1)));
        assert!(!c.probe(oid(2)), "evicted");
        assert!(c.probe(oid(3)));
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_objects_not_admitted() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 500);
        assert!(c.is_empty());
        assert!(!c.probe(oid(1)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 60);
        c.invalidate(oid(1));
        assert!(!c.probe(oid(1)));
        assert_eq!(c.used_bytes(), 0);
        // Invalidate of absent object is a no-op.
        c.invalidate(oid(9));
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 60);
        c.insert(oid(1), 60);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn zipf_traffic_gets_high_hit_ratio() {
        use gm_sim::dist::Zipf;
        use rand::SeedableRng;
        let z = Zipf::new(10_000, 1.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        // Cache 200 objects' worth of a 10k-object working set.
        let mut c = LruCache::new(200 * 64);
        for _ in 0..50_000 {
            let o = oid(z.sample(&mut rng) as u64);
            if !c.probe(o) {
                c.insert(o, 64);
            }
        }
        assert!(c.hit_ratio() > 0.35, "Zipf(1.0) top-2% cache: {}", c.hit_ratio());
    }
}
