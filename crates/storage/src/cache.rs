//! Cluster read cache.
//!
//! Storage frontends keep a RAM cache; with Zipf-skewed object popularity
//! a modest cache absorbs a disproportionate share of reads, which matters
//! here twice: cache hits cost (almost) no disk busy time — less energy —
//! and they bypass the spin-up/queueing path entirely — better tails when
//! gears are parked.
//!
//! The model is an **object-granular LRU** over the aggregate RAM of the
//! always-on (gear 0) servers: reads probe it first; a miss inserts the
//! object after the disk read; writes invalidate (write-around). Hits are
//! served at a flat RAM service time.

use crate::object::ObjectId;
use gm_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Service time of a cache hit (network/CPU bound, not media bound).
pub const CACHE_HIT_SERVICE: SimDuration = SimDuration(200); // 200 µs

/// An LRU cache over whole objects.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// Object → (bytes, recency tick).
    entries: HashMap<u64, (u64, u64)>,
    /// Recency tick → object (inverse index for eviction).
    recency: BTreeMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache of the given capacity; zero capacity disables it.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache { capacity_bytes, ..Default::default() }
    }

    /// Whether the cache is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all probes (0 when never probed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn touch(&mut self, id: u64) {
        if let Some(&(bytes, old_tick)) = self.entries.get(&id) {
            self.recency.remove(&old_tick);
            self.tick += 1;
            self.entries.insert(id, (bytes, self.tick));
            self.recency.insert(self.tick, id);
        }
    }

    /// Probe for a read of `object`. Counts a hit or a miss.
    pub fn probe(&mut self, object: ObjectId) -> bool {
        if !self.is_enabled() {
            return false;
        }
        if self.entries.contains_key(&object.0) {
            self.touch(object.0);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Insert `object` of `bytes` after a miss, evicting LRU entries to
    /// fit. Objects larger than the whole cache are not admitted.
    pub fn insert(&mut self, object: ObjectId, bytes: u64) {
        if !self.is_enabled() || bytes > self.capacity_bytes {
            return;
        }
        if self.entries.contains_key(&object.0) {
            self.touch(object.0);
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let (&tick, &victim) = self.recency.iter().next().expect("non-empty when over budget");
            self.recency.remove(&tick);
            let (vbytes, _) = self.entries.remove(&victim).expect("index consistent");
            self.used_bytes -= vbytes;
        }
        self.tick += 1;
        self.entries.insert(object.0, (bytes, self.tick));
        self.recency.insert(self.tick, object.0);
        self.used_bytes += bytes;
    }

    /// Invalidate a (possibly cached) object — called on writes.
    pub fn invalidate(&mut self, object: ObjectId) {
        if let Some((bytes, tick)) = self.entries.remove(&object.0) {
            self.recency.remove(&tick);
            self.used_bytes -= bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(i: u64) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = LruCache::new(0);
        assert!(!c.is_enabled());
        assert!(!c.probe(oid(1)));
        c.insert(oid(1), 10);
        assert!(!c.probe(oid(1)));
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(100);
        assert!(!c.probe(oid(1)), "cold miss");
        c.insert(oid(1), 40);
        assert!(c.probe(oid(1)), "warm hit");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.used_bytes(), 40);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 40);
        c.insert(oid(2), 40);
        // Touch 1 so 2 becomes LRU.
        assert!(c.probe(oid(1)));
        c.insert(oid(3), 40); // evicts 2
        assert!(c.probe(oid(1)));
        assert!(!c.probe(oid(2)), "evicted");
        assert!(c.probe(oid(3)));
        assert!(c.used_bytes() <= 100);
    }

    #[test]
    fn oversized_objects_not_admitted() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 500);
        assert!(c.is_empty());
        assert!(!c.probe(oid(1)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 60);
        c.invalidate(oid(1));
        assert!(!c.probe(oid(1)));
        assert_eq!(c.used_bytes(), 0);
        // Invalidate of absent object is a no-op.
        c.invalidate(oid(9));
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let mut c = LruCache::new(100);
        c.insert(oid(1), 60);
        c.insert(oid(1), 60);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn zipf_traffic_gets_high_hit_ratio() {
        use gm_sim::dist::Zipf;
        use rand::SeedableRng;
        let z = Zipf::new(10_000, 1.0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        // Cache 200 objects' worth of a 10k-object working set.
        let mut c = LruCache::new(200 * 64);
        for _ in 0..50_000 {
            let o = oid(z.sample(&mut rng) as u64);
            if !c.probe(o) {
                c.insert(o, 64);
            }
        }
        assert!(c.hit_ratio() > 0.35, "Zipf(1.0) top-2% cache: {}", c.hit_ratio());
    }
}
