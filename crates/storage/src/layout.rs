//! Replica placement layouts.
//!
//! The layout decides which disks hold an object's replicas, and it is the
//! *enabler* of spatial matching: with the **gear layout**, replica `r` of
//! every object lives in gear group `r`, so powering only gears `0..g`
//! leaves every object readable (gear 0 holds a full copy of the data set)
//! while each extra gear adds a full cluster's worth of read bandwidth.
//! This is the Sierra/Rabbit power-proportional design the GreenMatch
//! scheduler drives.
//!
//! Baseline layouts for the ablation (R-ablate-layout):
//!
//! * [`RandomLayout`] — R distinct uniformly random disks. Spinning down
//!   *any* disk under this layout loses the only nearby copy for ~`1/R` of
//!   objects, so power-gating needs the write log and spin-up waits.
//! * [`ChainedDeclustering`] — replica `r` on disk `(p + r) mod n`;
//!   classic availability layout, no power structure.
//! * [`CopysetLayout`] — replicas confined to precomputed copysets,
//!   minimising data-loss event probability; no power structure either.

use crate::object::DiskIdx;
use crate::object::ObjectId;
use gm_sim::rng::splitmix64;
use serde::{Deserialize, Serialize};

/// Physical shape of the cluster, shared by layouts and the cluster proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of servers.
    pub servers: usize,
    /// Disk bays per server.
    pub bays: usize,
    /// Number of gear groups (= replication factor for the gear layout).
    pub gears: usize,
}

impl Topology {
    /// Construct; `servers` must be divisible by `gears` so gear groups are
    /// equal-sized (a deliberate simplification — real deployments pad).
    pub fn new(servers: usize, bays: usize, gears: usize) -> Self {
        assert!(servers > 0 && bays > 0 && gears > 0);
        assert!(
            servers.is_multiple_of(gears),
            "servers ({servers}) must be divisible by gears ({gears})"
        );
        Topology { servers, bays, gears }
    }

    /// Total disk count.
    pub fn n_disks(&self) -> usize {
        self.servers * self.bays
    }

    /// Servers per gear group.
    pub fn servers_per_gear(&self) -> usize {
        self.servers / self.gears
    }

    /// Gear group of a server. Groups are contiguous: gear 0 is servers
    /// `0..n/g`, etc.
    pub fn gear_of_server(&self, server: usize) -> usize {
        debug_assert!(server < self.servers);
        server / self.servers_per_gear()
    }

    /// Gear group of a disk.
    pub fn gear_of_disk(&self, disk: DiskIdx) -> usize {
        self.gear_of_server(self.server_of_disk(disk))
    }

    /// Server owning a disk.
    pub fn server_of_disk(&self, disk: DiskIdx) -> usize {
        debug_assert!(disk < self.n_disks());
        disk / self.bays
    }

    /// Disks of one server.
    pub fn disks_of_server(&self, server: usize) -> std::ops::Range<DiskIdx> {
        let start = server * self.bays;
        start..start + self.bays
    }

    /// All disks in a gear group, as a contiguous index range — gear groups
    /// are contiguous runs of servers and server bays are contiguous runs of
    /// disks, so no allocation is needed to enumerate them.
    pub fn disks_in_gear_range(&self, gear: usize) -> std::ops::Range<DiskIdx> {
        debug_assert!(gear < self.gears);
        let per_gear = self.servers_per_gear() * self.bays;
        gear * per_gear..(gear + 1) * per_gear
    }

    /// All disks in a gear group.
    pub fn disks_in_gear(&self, gear: usize) -> Vec<DiskIdx> {
        self.disks_in_gear_range(gear).collect()
    }
}

/// A replica-placement strategy.
pub trait Layout {
    /// Choose the replica disks (in replica order, all distinct) for an
    /// object. Deterministic in `(self, id)`.
    fn place(&self, topo: &Topology, id: ObjectId, replication: usize) -> Vec<DiskIdx>;

    /// Label for reports.
    fn label(&self) -> &'static str;
}

/// Identifier for the built-in layouts (config/serde friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutKind {
    /// Gear-structured power-proportional layout.
    Gear,
    /// Uniform random distinct disks.
    Random,
    /// Chained declustering.
    Chained,
    /// Copyset placement with the given scatter seed.
    Copyset,
}

impl LayoutKind {
    /// Instantiate the layout with a placement seed.
    pub fn build(self, seed: u64) -> Box<dyn Layout + Send + Sync> {
        match self {
            LayoutKind::Gear => Box::new(GearLayout { seed }),
            LayoutKind::Random => Box::new(RandomLayout { seed }),
            LayoutKind::Chained => Box::new(ChainedDeclustering { seed }),
            LayoutKind::Copyset => Box::new(CopysetLayout { seed }),
        }
    }
}

/// Stateless deterministic hash of `(seed, object, salt)`.
pub(crate) fn obj_hash(seed: u64, id: ObjectId, salt: u64) -> u64 {
    let mut s =
        seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    splitmix64(&mut s)
}

/// Replica `r` in gear group `r`, spread within the gear by object hash.
#[derive(Debug, Clone, Copy)]
pub struct GearLayout {
    /// Placement seed.
    pub seed: u64,
}

impl Layout for GearLayout {
    fn place(&self, topo: &Topology, id: ObjectId, replication: usize) -> Vec<DiskIdx> {
        assert!(
            replication <= topo.gears,
            "gear layout needs replication ({replication}) <= gears ({})",
            topo.gears
        );
        let per_gear = topo.servers_per_gear() * topo.bays;
        (0..replication)
            .map(|r| {
                let within = (obj_hash(self.seed, id, r as u64) % per_gear as u64) as usize;
                // Gear r's disks start at server r*spg.
                r * per_gear + within
            })
            .collect()
    }

    fn label(&self) -> &'static str {
        "gear"
    }
}

/// R distinct uniformly random disks.
#[derive(Debug, Clone, Copy)]
pub struct RandomLayout {
    /// Placement seed.
    pub seed: u64,
}

impl Layout for RandomLayout {
    fn place(&self, topo: &Topology, id: ObjectId, replication: usize) -> Vec<DiskIdx> {
        let n = topo.n_disks();
        assert!(replication <= n);
        let mut picked = Vec::with_capacity(replication);
        let mut salt = 0u64;
        while picked.len() < replication {
            let d = (obj_hash(self.seed, id, salt) % n as u64) as usize;
            salt += 1;
            if !picked.contains(&d) {
                picked.push(d);
            }
        }
        picked
    }

    fn label(&self) -> &'static str {
        "random"
    }
}

/// Primary by hash; replica `r` on disk `(p + r·bays) mod n` — stepping by
/// `bays` keeps replicas on distinct servers for the common bay counts.
#[derive(Debug, Clone, Copy)]
pub struct ChainedDeclustering {
    /// Placement seed.
    pub seed: u64,
}

impl Layout for ChainedDeclustering {
    fn place(&self, topo: &Topology, id: ObjectId, replication: usize) -> Vec<DiskIdx> {
        let n = topo.n_disks();
        assert!(replication * topo.bays <= n, "chain would wrap onto the same server");
        let p = (obj_hash(self.seed, id, 0) % n as u64) as usize;
        (0..replication).map(|r| (p + r * topo.bays) % n).collect()
    }

    fn label(&self) -> &'static str {
        "chained"
    }
}

/// Copyset placement: disks are permuted (by seed) and chunked into copysets
/// of size R; an object maps to one copyset.
#[derive(Debug, Clone, Copy)]
pub struct CopysetLayout {
    /// Permutation/assignment seed.
    pub seed: u64,
}

impl CopysetLayout {
    /// The permuted disk order for a topology.
    fn permutation(&self, topo: &Topology) -> Vec<DiskIdx> {
        let n = topo.n_disks();
        let mut perm: Vec<DiskIdx> = (0..n).collect();
        // Fisher–Yates with splitmix64 as the generator.
        let mut state = self.seed ^ 0xC0FF_EE00_D15C_0000;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }
}

impl Layout for CopysetLayout {
    fn place(&self, topo: &Topology, id: ObjectId, replication: usize) -> Vec<DiskIdx> {
        let n = topo.n_disks();
        assert!(replication <= n);
        let perm = self.permutation(topo);
        let n_sets = n / replication;
        assert!(n_sets > 0);
        let set = (obj_hash(self.seed, id, 1) % n_sets as u64) as usize;
        perm[set * replication..(set + 1) * replication].to_vec()
    }

    fn label(&self) -> &'static str {
        "copyset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(12, 4, 3) // 48 disks, 3 gears of 16 disks
    }

    #[test]
    fn topology_partitions() {
        let t = topo();
        assert_eq!(t.n_disks(), 48);
        assert_eq!(t.servers_per_gear(), 4);
        assert_eq!(t.gear_of_server(0), 0);
        assert_eq!(t.gear_of_server(4), 1);
        assert_eq!(t.gear_of_server(11), 2);
        assert_eq!(t.gear_of_disk(0), 0);
        assert_eq!(t.gear_of_disk(47), 2);
        assert_eq!(t.server_of_disk(17), 4);
        // Gear disk sets are disjoint and cover everything.
        let mut all: Vec<DiskIdx> = (0..3).flat_map(|g| t.disks_in_gear(g)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..48).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn uneven_gears_panic() {
        let _ = Topology::new(10, 4, 3);
    }

    #[test]
    fn gear_layout_replica_r_in_gear_r() {
        let t = topo();
        let l = GearLayout { seed: 1 };
        for i in 0..500 {
            let reps = l.place(&t, ObjectId(i), 3);
            assert_eq!(reps.len(), 3);
            for (r, &d) in reps.iter().enumerate() {
                assert_eq!(t.gear_of_disk(d), r, "object {i} replica {r} on disk {d}");
            }
        }
    }

    #[test]
    fn gear_layout_balances_within_gear() {
        let t = topo();
        let l = GearLayout { seed: 2 };
        let mut counts = vec![0usize; t.n_disks()];
        for i in 0..16_000 {
            for d in l.place(&t, ObjectId(i), 3) {
                counts[d] += 1;
            }
        }
        // Every disk holds ~1000 replicas; allow ±20 %.
        for (d, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "disk {d} has {c} replicas");
        }
    }

    #[test]
    fn all_layouts_produce_distinct_replicas() {
        let t = topo();
        for kind in [LayoutKind::Gear, LayoutKind::Random, LayoutKind::Chained, LayoutKind::Copyset]
        {
            let l = kind.build(7);
            for i in 0..300 {
                let reps = l.place(&t, ObjectId(i), 3);
                let mut sorted = reps.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 3, "{}: {reps:?}", l.label());
                assert!(reps.iter().all(|&d| d < t.n_disks()));
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let t = topo();
        for kind in [LayoutKind::Gear, LayoutKind::Random, LayoutKind::Chained, LayoutKind::Copyset]
        {
            let a = kind.build(9).place(&t, ObjectId(123), 3);
            let b = kind.build(9).place(&t, ObjectId(123), 3);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn chained_replicas_on_distinct_servers() {
        let t = topo();
        let l = ChainedDeclustering { seed: 3 };
        for i in 0..300 {
            let reps = l.place(&t, ObjectId(i), 3);
            let mut servers: Vec<usize> = reps.iter().map(|&d| t.server_of_disk(d)).collect();
            servers.sort_unstable();
            servers.dedup();
            assert_eq!(servers.len(), 3, "object {i}: {reps:?}");
        }
    }

    #[test]
    fn copysets_limit_distinct_sets() {
        let t = topo();
        let l = CopysetLayout { seed: 4 };
        let mut sets = std::collections::HashSet::new();
        for i in 0..5_000 {
            let mut reps = l.place(&t, ObjectId(i), 3);
            reps.sort_unstable();
            sets.insert(reps);
        }
        // 48 disks / 3 = 16 copysets max.
        assert!(sets.len() <= 16, "found {} copysets", sets.len());
        assert!(sets.len() >= 12, "hash should reach most copysets: {}", sets.len());
    }

    #[test]
    fn random_layout_spreads_over_gears() {
        let t = topo();
        let l = RandomLayout { seed: 5 };
        // With random placement, some object must have NO replica in gear 0
        // (the property that breaks naive power-gating).
        let orphaned =
            (0..200).any(|i| l.place(&t, ObjectId(i), 3).iter().all(|&d| t.gear_of_disk(d) != 0));
        assert!(orphaned, "random layout should orphan some objects from gear 0");
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn gear_layout_rejects_over_replication() {
        let t = topo();
        let _ = GearLayout { seed: 0 }.place(&t, ObjectId(0), 4);
    }
}
