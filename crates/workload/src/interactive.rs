//! Interactive (latency-critical) request streams.
//!
//! An [`InteractiveStream`] is a client session issuing random I/O at a
//! base rate for its lifetime (~12 h in the medium-DC preset). The cluster-
//! wide intensity is the superposition of all live streams, modulated by a
//! diurnal curve (business-hours peak, small-hours trough) — the canonical
//! shape of private-cloud traces.
//!
//! Request synthesis is **per-slot and seeded**: the requests of slot `s`
//! are a pure function of `(workload seed, s)`, so a run materialises only
//! one slot at a time and every policy sees the identical byte stream.

use gm_sim::dist::{exponential, lognormal_mean_cv, poisson, Zipf};
use gm_sim::time::{SimDuration, SimTime};
use gm_sim::{RngFactory, SlotClock};
use gm_storage::{IoRequest, ObjectId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the interactive half of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveSpec {
    /// Number of streams over the horizon.
    pub streams: usize,
    /// Mean stream lifetime.
    pub mean_lifetime: SimDuration,
    /// Per-stream base request rate (req/s) before diurnal modulation.
    pub rate_rps: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size (bytes).
    pub mean_size_bytes: f64,
    /// Coefficient of variation of request size (lognormal).
    pub size_cv: f64,
    /// Zipf exponent of object popularity.
    pub zipf_s: f64,
    /// Diurnal modulation amplitude in `[0,1)`: intensity swings between
    /// `1−a` and `1+a` around the base, peaking mid-afternoon.
    pub diurnal_amplitude: f64,
    /// Number of addressable objects (must match the cluster directory).
    pub objects: usize,
    /// Horizon over which streams start.
    pub horizon: SimDuration,
}

impl InteractiveSpec {
    /// Medium-DC preset: ≈790 streams of ~12 h over one week.
    pub fn medium_week(objects: usize) -> Self {
        InteractiveSpec {
            streams: 787,
            mean_lifetime: SimDuration::from_hours(12),
            rate_rps: 0.20,
            read_fraction: 0.70,
            mean_size_bytes: 256.0 * 1024.0,
            size_cv: 1.5,
            zipf_s: 0.9,
            diurnal_amplitude: 0.6,
            objects,
            horizon: SimDuration::from_days(7),
        }
    }

    /// Diurnal intensity multiplier at `t` (peak 15:00, trough 03:00).
    pub fn diurnal(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        1.0 + self.diurnal_amplitude * ((h - 15.0) / 24.0 * std::f64::consts::TAU).cos()
    }
}

/// One client session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractiveStream {
    /// Session start.
    pub start: SimTime,
    /// Session end.
    pub end: SimTime,
    /// Base rate (req/s).
    pub rate_rps: f64,
}

impl InteractiveStream {
    /// Overlap of this stream with `[a, b)`.
    pub fn overlap(&self, a: SimTime, b: SimTime) -> SimDuration {
        let lo = self.start.max(a);
        let hi = self.end.min(b);
        hi.saturating_sub(lo)
    }
}

/// Generator over an [`InteractiveSpec`]: pre-draws the stream population,
/// then synthesises requests slot by slot.
#[derive(Debug, Clone)]
pub struct InteractiveGenerator {
    spec: InteractiveSpec,
    streams: Vec<InteractiveStream>,
    popularity: Zipf,
    rngs: RngFactory,
}

impl InteractiveGenerator {
    /// Draw the stream population deterministically from `rngs`.
    ///
    /// Stream starts follow the diurnal curve (thinning an exponential
    /// arrival process), so business hours see more session launches.
    pub fn new(spec: InteractiveSpec, rngs: &RngFactory) -> Self {
        assert!(spec.objects > 0);
        assert!((0.0..=1.0).contains(&spec.read_fraction));
        let mut rng = rngs.stream("interactive-streams");
        let horizon_s = spec.horizon.as_secs_f64();
        let mut streams = Vec::with_capacity(spec.streams);
        // Thinned Poisson process over the horizon with target count.
        let base_rate = spec.streams as f64 / horizon_s * 2.0; // oversample, thin
        let mut t = 0.0;
        while streams.len() < spec.streams {
            t += exponential(&mut rng, base_rate);
            if t >= horizon_s {
                // Wrap: sessions keep arriving; restart the clock.
                t -= horizon_s;
            }
            let start = SimTime::ZERO + SimDuration::from_secs_f64(t);
            let accept = spec.diurnal(start) / (1.0 + spec.diurnal_amplitude);
            if rng.gen::<f64>() > accept {
                continue;
            }
            let life = exponential(&mut rng, 1.0 / spec.mean_lifetime.as_secs_f64());
            streams.push(InteractiveStream {
                start,
                end: start + SimDuration::from_secs_f64(life),
                rate_rps: spec.rate_rps,
            });
        }
        streams.sort_by_key(|s| s.start);
        let popularity = Zipf::new(spec.objects, spec.zipf_s);
        InteractiveGenerator { spec, streams, popularity, rngs: *rngs }
    }

    /// The spec.
    pub fn spec(&self) -> &InteractiveSpec {
        &self.spec
    }

    /// The stream population.
    pub fn streams(&self) -> &[InteractiveStream] {
        &self.streams
    }

    /// Expected aggregate request rate (req/s) in a slot — what capacity
    /// planners use.
    pub fn expected_rate_in_slot(&self, clock: SlotClock, slot: usize) -> f64 {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        let width_s = clock.width().as_secs_f64();
        let mid = a + clock.width() / 2;
        let diurnal = self.spec.diurnal(mid);
        let live: f64 =
            self.streams.iter().map(|s| s.overlap(a, b).as_secs_f64() / width_s * s.rate_rps).sum();
        live * diurnal
    }

    /// Synthesise the requests of one slot, sorted by arrival.
    pub fn requests_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<IoRequest> {
        let mut out = Vec::new();
        self.requests_in_slot_into(clock, slot, &mut out);
        out
    }

    /// [`Self::requests_in_slot`] into a caller-owned buffer (cleared
    /// first), so the per-slot hot loop reuses one allocation for the life
    /// of a run.
    pub fn requests_in_slot_into(&self, clock: SlotClock, slot: usize, out: &mut Vec<IoRequest>) {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        let mid = a + clock.width() / 2;
        let diurnal = self.spec.diurnal(mid);
        let mut rng = self.rngs.indexed_stream("interactive-slot", slot as u64);
        out.clear();
        for s in &self.streams {
            let ov = s.overlap(a, b).as_secs_f64();
            if ov <= 0.0 {
                continue;
            }
            let mean = s.rate_rps * ov * diurnal;
            let n = poisson(&mut rng, mean);
            for _ in 0..n {
                let lo = s.start.max(a);
                let span = s.end.min(b).saturating_sub(lo).as_secs_f64();
                let dt = rng.gen::<f64>() * span;
                let arrival = lo + SimDuration::from_secs_f64(dt);
                let object = ObjectId(self.popularity.sample(&mut rng) as u64);
                let size = lognormal_mean_cv(&mut rng, self.spec.mean_size_bytes, self.spec.size_cv)
                    .max(512.0) as u64;
                let req = if rng.gen::<f64>() < self.spec.read_fraction {
                    IoRequest::read(arrival, object, size)
                } else {
                    IoRequest::write(arrival, object, size)
                };
                out.push(req);
            }
        }
        out.sort_by_key(|r| r.arrival);
    }

    /// Expected disk busy-seconds the slot's requests will cost, assuming
    /// random access at `service_secs_per_byte` + `positioning_secs` each —
    /// the planner's load estimate.
    pub fn expected_busy_secs_in_slot(
        &self,
        clock: SlotClock,
        slot: usize,
        positioning_secs: f64,
        secs_per_byte: f64,
    ) -> f64 {
        let rate = self.expected_rate_in_slot(clock, slot);
        let width_s = clock.width().as_secs_f64();
        rate * width_s * (positioning_secs + self.spec.mean_size_bytes * secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_storage::IoKind;

    fn generator() -> InteractiveGenerator {
        let mut spec = InteractiveSpec::medium_week(1_000);
        spec.streams = 100; // keep tests fast
        InteractiveGenerator::new(spec, &RngFactory::new(42))
    }

    #[test]
    fn population_size_and_ordering() {
        let g = generator();
        assert_eq!(g.streams().len(), 100);
        assert!(g.streams().windows(2).all(|w| w[0].start <= w[1].start));
        for s in g.streams() {
            assert!(s.end > s.start);
        }
    }

    #[test]
    fn slot_synthesis_is_deterministic() {
        let g1 = generator();
        let g2 = generator();
        let c = SlotClock::hourly();
        let a = g1.requests_in_slot(c, 40);
        let b = g2.requests_in_slot(c, 40);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.object, y.object);
            assert_eq!(x.size_bytes, y.size_bytes);
        }
    }

    #[test]
    fn requests_fall_inside_slot_and_stream() {
        let g = generator();
        let c = SlotClock::hourly();
        for slot in [10usize, 50, 100] {
            for r in g.requests_in_slot(c, slot) {
                assert!(r.arrival >= c.slot_start(slot) && r.arrival < c.slot_end(slot));
                assert!(r.size_bytes >= 512);
                assert!(r.object.0 < 1_000);
            }
        }
    }

    #[test]
    fn read_write_mix_approximates_spec() {
        let g = generator();
        let c = SlotClock::hourly();
        let mut reads = 0usize;
        let mut total = 0usize;
        for slot in 0..168 {
            for r in g.requests_in_slot(c, slot) {
                total += 1;
                if r.kind == IoKind::Read {
                    reads += 1;
                }
            }
        }
        assert!(total > 1_000, "enough requests to judge the mix: {total}");
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.70).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn diurnal_peaks_in_afternoon() {
        let spec = InteractiveSpec::medium_week(10);
        let peak = spec.diurnal(SimTime::from_hours(15));
        let trough = spec.diurnal(SimTime::from_hours(3));
        assert!((peak - 1.6).abs() < 1e-9);
        assert!((trough - 0.4).abs() < 1e-9);
    }

    #[test]
    fn expected_rate_tracks_synthesis() {
        let g = generator();
        let c = SlotClock::hourly();
        // Sum expectation vs realisation over the busiest day.
        let mut expect = 0.0;
        let mut actual = 0usize;
        for slot in 24..48 {
            expect += g.expected_rate_in_slot(c, slot) * 3600.0;
            actual += g.requests_in_slot(c, slot).len();
        }
        assert!(expect > 0.0);
        let ratio = actual as f64 / expect;
        assert!((0.8..1.2).contains(&ratio), "actual/expected = {ratio}");
    }

    #[test]
    fn busy_estimate_is_positive_during_activity() {
        let g = generator();
        let c = SlotClock::hourly();
        let busy = g.expected_busy_secs_in_slot(c, 30, 0.0127, 1.0 / 140.0e6);
        assert!(busy >= 0.0);
    }
}
