//! Interactive (latency-critical) request streams.
//!
//! An [`InteractiveStream`] is a client session issuing random I/O at a
//! base rate for its lifetime (~12 h in the medium-DC preset). The cluster-
//! wide intensity is the superposition of all live streams, modulated by a
//! diurnal curve (business-hours peak, small-hours trough) — the canonical
//! shape of private-cloud traces.
//!
//! Request synthesis is **per-stream, per-slot and seeded**: the requests
//! of stream `i` in slot `s` are a pure function of
//! `(workload seed, i, s)` via [`RngFactory::keyed_stream`]-style
//! counter-based seeding, so any subset of streams can be synthesised
//! independently — on one thread or sharded across many — and every
//! policy sees the identical byte stream. The population is stored
//! struct-of-arrays ([`StreamColumns`]: start/end/rate/request-seed
//! columns, ~32 B per stream), so a 10⁶-stream population costs ~32 MB
//! and the per-slot live-set walk is cache-friendly.
//!
//! Two ways to find the streams alive in a slot:
//!
//! * [`LiveCursor`] — the O(live + newly started) path the simulation hot
//!   loop uses: sorted-by-start streams admitted by an advancing cursor,
//!   dropped when their end passes the slot start.
//! * the stateless query ([`InteractiveGenerator::live_streams_in_slot`])
//!   — a prefix cut by `start` (binary search) plus a block-indexed scan
//!   that skips blocks whose latest `end` precedes the slot. Exact same
//!   set, usable from any slot without history (cold queries, resume).

use gm_sim::dist::{exponential, lognormal_mean_cv, poisson, Zipf};
use gm_sim::rng::splitmix64;
use gm_sim::time::{SimDuration, SimTime};
use gm_sim::{RngFactory, SlotClock};
use gm_storage::{IoRequest, ObjectId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the interactive half of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractiveSpec {
    /// Number of streams over the horizon.
    pub streams: usize,
    /// Mean stream lifetime.
    pub mean_lifetime: SimDuration,
    /// Per-stream base request rate (req/s) before diurnal modulation.
    pub rate_rps: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size (bytes).
    pub mean_size_bytes: f64,
    /// Coefficient of variation of request size (lognormal).
    pub size_cv: f64,
    /// Zipf exponent of object popularity.
    pub zipf_s: f64,
    /// Diurnal modulation amplitude in `[0,1)`: intensity swings between
    /// `1−a` and `1+a` around the base, peaking mid-afternoon.
    pub diurnal_amplitude: f64,
    /// Number of addressable objects (must match the cluster directory).
    pub objects: usize,
    /// Horizon over which streams start.
    pub horizon: SimDuration,
}

impl InteractiveSpec {
    /// Medium-DC preset: ≈790 streams of ~12 h over one week.
    pub fn medium_week(objects: usize) -> Self {
        InteractiveSpec {
            streams: 787,
            mean_lifetime: SimDuration::from_hours(12),
            rate_rps: 0.20,
            read_fraction: 0.70,
            mean_size_bytes: 256.0 * 1024.0,
            size_cv: 1.5,
            zipf_s: 0.9,
            diurnal_amplitude: 0.6,
            objects,
            horizon: SimDuration::from_days(7),
        }
    }

    /// Diurnal intensity multiplier at `t` (peak 15:00, trough 03:00).
    pub fn diurnal(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        1.0 + self.diurnal_amplitude * ((h - 15.0) / 24.0 * std::f64::consts::TAU).cos()
    }
}

/// One client session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractiveStream {
    /// Session start.
    pub start: SimTime,
    /// Session end.
    pub end: SimTime,
    /// Base rate (req/s).
    pub rate_rps: f64,
}

impl InteractiveStream {
    /// Overlap of this stream with `[a, b)`.
    pub fn overlap(&self, a: SimTime, b: SimTime) -> SimDuration {
        let lo = self.start.max(a);
        let hi = self.end.min(b);
        hi.saturating_sub(lo)
    }
}

/// Why an [`InteractiveSpec`] could not be turned into a population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteractiveError {
    /// The oversample/thin loop drawing session starts hit its iteration
    /// cap before reaching the target stream count — the spec's diurnal
    /// acceptance is degenerate (or the target is unreachable).
    ThinningStalled {
        /// Stream count the spec asked for.
        target: usize,
        /// Streams actually accepted when the cap was hit.
        accepted: usize,
        /// Iterations spent (the cap).
        iterations: u64,
    },
}

impl std::fmt::Display for InteractiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InteractiveError::ThinningStalled { target, accepted, iterations } => write!(
                f,
                "interactive population stalled: {accepted}/{target} streams after \
                 {iterations} thinning iterations (degenerate diurnal acceptance?)"
            ),
        }
    }
}

impl std::error::Error for InteractiveError {}

/// Streams in a block share one `max(end)` bound, letting the stateless
/// live query skip whole blocks that ended before the slot.
const BLOCK: usize = 4096;

/// Axis multipliers of [`RngFactory::keyed_seed`]; the stream index is
/// pre-mixed into the seed column with `KEY_A`, the slot finishes the seed
/// with `KEY_B` at synthesis time.
const KEY_A: u64 = 0x9E37_79B9_7F4A_7C15;
const KEY_B: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// The stream population, struct-of-arrays and sorted by start.
#[derive(Debug, Clone, Default)]
pub struct StreamColumns {
    /// Session starts (µs), ascending.
    start_us: Vec<u64>,
    /// Session ends (µs); `end_us[i]` belongs to `start_us[i]`.
    end_us: Vec<u64>,
    /// Base rates (req/s).
    rate_rps: Vec<f64>,
    /// Per-stream request-seed column: `seed_for("interactive-req") ^
    /// i·KEY_A`, pre-mixed so finishing a per-`(stream, slot)` seed is one
    /// xor + one SplitMix round (see [`RngFactory::keyed_seed`]).
    req_seed: Vec<u64>,
    /// `max(end_us)` per [`BLOCK`] of streams.
    block_max_end: Vec<u64>,
}

impl StreamColumns {
    fn from_streams(streams: &[InteractiveStream], req_seed_base: u64) -> Self {
        debug_assert!(streams.windows(2).all(|w| w[0].start <= w[1].start), "sorted by start");
        let mut cols = StreamColumns {
            start_us: Vec::with_capacity(streams.len()),
            end_us: Vec::with_capacity(streams.len()),
            rate_rps: Vec::with_capacity(streams.len()),
            req_seed: Vec::with_capacity(streams.len()),
            block_max_end: Vec::with_capacity(streams.len().div_ceil(BLOCK)),
        };
        for (i, s) in streams.iter().enumerate() {
            cols.start_us.push(s.start.0);
            cols.end_us.push(s.end.0);
            cols.rate_rps.push(s.rate_rps);
            cols.req_seed.push(req_seed_base ^ (i as u64).wrapping_mul(KEY_A));
            let block = i / BLOCK;
            if block == cols.block_max_end.len() {
                cols.block_max_end.push(s.end.0);
            } else {
                cols.block_max_end[block] = cols.block_max_end[block].max(s.end.0);
            }
        }
        cols
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.start_us.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.start_us.is_empty()
    }

    /// Materialise stream `i` in the row form.
    pub fn get(&self, i: usize) -> InteractiveStream {
        InteractiveStream {
            start: SimTime(self.start_us[i]),
            end: SimTime(self.end_us[i]),
            rate_rps: self.rate_rps[i],
        }
    }

    /// Index of the first stream starting at or after `b_us` — the prefix
    /// cut of the live query (streams past it cannot overlap `[a, b)`).
    fn prefix_end(&self, b_us: u64) -> usize {
        self.start_us.partition_point(|&s| s < b_us)
    }

    /// Visit (in ascending index order) every stream overlapping
    /// `[a_us, b_us)`, i.e. with `start < b && end > a`. Stateless: a
    /// binary-searched prefix cut by start, then a block scan skipping
    /// blocks whose `max(end)` precedes the slot.
    fn for_each_live(&self, a_us: u64, b_us: u64, mut f: impl FnMut(usize)) {
        let hi = self.prefix_end(b_us);
        let mut i = 0;
        while i < hi {
            let block = i / BLOCK;
            if self.block_max_end[block] <= a_us {
                i = (block + 1) * BLOCK;
                continue;
            }
            let block_end = ((block + 1) * BLOCK).min(hi);
            while i < block_end {
                if self.end_us[i] > a_us {
                    f(i);
                }
                i += 1;
            }
        }
    }
}

/// An advancing live-set cursor over a sorted stream population — the
/// O(live + newly started) way to enumerate the streams of consecutive
/// slots. One cursor belongs to one walk (a run of a simulation); it is
/// **not** part of the workload, which stays immutable and shared.
///
/// [`LiveCursor::advance_to`] is exact for *any* forward move, not just
/// `slot + 1`: admitting every stream with `start < slot_end` and then
/// retaining `end > slot_start` reproduces the stateless live set from
/// whatever prior state the cursor was in. A freshly constructed cursor
/// advanced straight to slot `s` therefore equals a cursor stepped through
/// `0..=s` — which is how snapshot/resume restores the cursor without
/// serialising it (resume-by-seek).
#[derive(Debug, Clone, Default)]
pub struct LiveCursor {
    /// Streams before this index have been admitted.
    pos: usize,
    /// Live stream indices, ascending.
    live: Vec<u32>,
    /// End (µs) of the last slot advanced to; a move backwards resets.
    frontier_us: u64,
}

impl LiveCursor {
    /// A cursor at the beginning of time.
    pub fn new() -> Self {
        LiveCursor::default()
    }

    /// Advance to `slot` and return the live stream indices (ascending).
    /// Exact for any forward move; a backward move falls back to a reset +
    /// re-walk (correct, just not incremental).
    pub fn advance_to<'c>(
        &'c mut self,
        generator: &InteractiveGenerator,
        clock: SlotClock,
        slot: usize,
    ) -> &'c [u32] {
        let cols = &generator.cols;
        let a_us = clock.slot_start(slot).0;
        let b_us = clock.slot_end(slot).0;
        if b_us < self.frontier_us {
            self.pos = 0;
            self.live.clear();
        }
        self.frontier_us = b_us;
        while self.pos < cols.len() && cols.start_us[self.pos] < b_us {
            self.live.push(self.pos as u32);
            self.pos += 1;
        }
        let end_us = &cols.end_us;
        self.live.retain(|&i| end_us[i as usize] > a_us);
        &self.live
    }

    /// The live set of the last slot advanced to (ascending indices).
    pub fn live(&self) -> &[u32] {
        &self.live
    }
}

/// Generator over an [`InteractiveSpec`]: pre-draws the stream population,
/// then synthesises requests slot by slot (and stream by stream — each
/// stream's requests come from its own `(stream, slot)`-keyed RNG, so the
/// synthesis of disjoint stream ranges can run on different shards and
/// still concatenate into the byte-identical slot).
#[derive(Debug, Clone)]
pub struct InteractiveGenerator {
    spec: InteractiveSpec,
    cols: StreamColumns,
    popularity: Zipf,
}

/// Iteration cap of the oversample/thin population loop: comfortably
/// above the ~2× oversampling the thinning needs for any sane spec, but
/// finite, so a degenerate acceptance cannot spin forever.
fn thinning_cap(target: usize) -> u64 {
    (target as u64).saturating_mul(64).saturating_add(10_000)
}

impl InteractiveGenerator {
    /// Draw the stream population deterministically from `rngs`,
    /// panicking on a degenerate spec (see [`Self::try_new`]).
    pub fn new(spec: InteractiveSpec, rngs: &RngFactory) -> Self {
        Self::try_new(spec, rngs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Draw the stream population deterministically from `rngs`.
    ///
    /// Stream starts follow the diurnal curve (thinning an exponential
    /// arrival process), so business hours see more session launches. The
    /// thinning loop is bounded (~64 iterations per requested stream);
    /// a spec whose acceptance is degenerate reports
    /// [`InteractiveError::ThinningStalled`] instead of spinning forever.
    pub fn try_new(spec: InteractiveSpec, rngs: &RngFactory) -> Result<Self, InteractiveError> {
        let cap = thinning_cap(spec.streams);
        Self::try_new_bounded(spec, rngs, cap)
    }

    /// [`Self::try_new`] with an explicit iteration cap (exposed so tests
    /// can exercise the stall path without a genuinely degenerate spec).
    fn try_new_bounded(
        spec: InteractiveSpec,
        rngs: &RngFactory,
        cap: u64,
    ) -> Result<Self, InteractiveError> {
        assert!(spec.objects > 0);
        assert!((0.0..=1.0).contains(&spec.read_fraction));
        let mut rng = rngs.stream("interactive-streams");
        let horizon_s = spec.horizon.as_secs_f64();
        let mut streams = Vec::with_capacity(spec.streams);
        // Thinned Poisson process over the horizon with target count.
        let base_rate = spec.streams as f64 / horizon_s * 2.0; // oversample, thin
        let mut t = 0.0;
        let mut iterations = 0u64;
        while streams.len() < spec.streams {
            if iterations >= cap {
                return Err(InteractiveError::ThinningStalled {
                    target: spec.streams,
                    accepted: streams.len(),
                    iterations,
                });
            }
            iterations += 1;
            t += exponential(&mut rng, base_rate);
            if t >= horizon_s {
                // Wrap: sessions keep arriving; restart the clock.
                t -= horizon_s;
            }
            let start = SimTime::ZERO + SimDuration::from_secs_f64(t);
            let accept = spec.diurnal(start) / (1.0 + spec.diurnal_amplitude);
            if rng.gen::<f64>() > accept {
                continue;
            }
            let life = exponential(&mut rng, 1.0 / spec.mean_lifetime.as_secs_f64());
            streams.push(InteractiveStream {
                start,
                end: start + SimDuration::from_secs_f64(life),
                rate_rps: spec.rate_rps,
            });
        }
        streams.sort_by_key(|s| s.start);
        let cols = StreamColumns::from_streams(&streams, rngs.seed_for("interactive-req"));
        let popularity = Zipf::new(spec.objects, spec.zipf_s);
        Ok(InteractiveGenerator { spec, cols, popularity })
    }

    /// The spec.
    pub fn spec(&self) -> &InteractiveSpec {
        &self.spec
    }

    /// Number of streams in the population.
    pub fn stream_count(&self) -> usize {
        self.cols.len()
    }

    /// Materialise stream `i` in the row form.
    pub fn stream(&self, i: usize) -> InteractiveStream {
        self.cols.get(i)
    }

    /// The population in columnar form.
    pub fn columns(&self) -> &StreamColumns {
        &self.cols
    }

    /// Stateless live query: the indices (ascending) of every stream
    /// overlapping `slot`, computed without cursor history — exactly the
    /// set a [`LiveCursor`] advanced to `slot` holds. Appends into `out`
    /// after clearing it.
    pub fn live_streams_in_slot(&self, clock: SlotClock, slot: usize, out: &mut Vec<u32>) {
        out.clear();
        let a = clock.slot_start(slot).0;
        let b = clock.slot_end(slot).0;
        self.cols.for_each_live(a, b, |i| out.push(i as u32));
    }

    /// Expected aggregate request rate (req/s) in a slot — what capacity
    /// planners use.
    pub fn expected_rate_in_slot(&self, clock: SlotClock, slot: usize) -> f64 {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        let width_s = clock.width().as_secs_f64();
        let mid = a + clock.width() / 2;
        let diurnal = self.spec.diurnal(mid);
        // Ascending-index accumulation: the same order (and therefore the
        // same float sum) as a full population scan, since streams outside
        // the live set would contribute exactly 0.0.
        let mut live = 0.0;
        self.cols.for_each_live(a.0, b.0, |i| {
            let s = self.cols.get(i);
            live += s.overlap(a, b).as_secs_f64() / width_s * s.rate_rps;
        });
        live * diurnal
    }

    /// Synthesise the requests of one slot, sorted by arrival.
    pub fn requests_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<IoRequest> {
        let mut out = Vec::new();
        self.requests_in_slot_into(clock, slot, &mut out);
        out
    }

    /// [`Self::requests_in_slot`] into a caller-owned buffer (cleared
    /// first), so the per-slot hot loop reuses one allocation for the life
    /// of a run.
    pub fn requests_in_slot_into(&self, clock: SlotClock, slot: usize, out: &mut Vec<IoRequest>) {
        out.clear();
        let a = clock.slot_start(slot).0;
        let b = clock.slot_end(slot).0;
        let mut scratch = Vec::new();
        self.cols.for_each_live(a, b, |i| scratch.push(i as u32));
        self.synthesize_streams_into(clock, slot, &scratch, out);
        out.sort_by_key(|r| r.arrival);
    }

    /// Append the requests of the given streams in `slot` to `out`
    /// (per-stream draw order; **not** sorted by arrival across streams).
    ///
    /// This is the shard kernel: because each stream's requests come from
    /// its own `(stream, slot)`-keyed RNG, concatenating the outputs of
    /// disjoint stream ranges in ascending stream order — no matter how
    /// the ranges were split across shards or threads — yields exactly
    /// the sequence a single-threaded walk of the live set produces. One
    /// stable sort by arrival then gives the canonical slot ordering.
    pub fn synthesize_streams_into(
        &self,
        clock: SlotClock,
        slot: usize,
        streams: &[u32],
        out: &mut Vec<IoRequest>,
    ) {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        let mid = a + clock.width() / 2;
        let diurnal = self.spec.diurnal(mid);
        let slot_mix = (slot as u64).wrapping_mul(KEY_B);
        for &i in streams {
            let i = i as usize;
            let s = self.cols.get(i);
            let ov = s.overlap(a, b).as_secs_f64();
            if ov <= 0.0 {
                continue;
            }
            // Finish the pre-mixed seed column with the slot axis — the
            // seed RngFactory::keyed_seed("interactive-req", i, slot)
            // derives (pinned by a test below).
            let mut state = self.cols.req_seed[i] ^ slot_mix;
            let mut rng = SmallRng::seed_from_u64(splitmix64(&mut state));
            let mean = s.rate_rps * ov * diurnal;
            let n = poisson(&mut rng, mean);
            for _ in 0..n {
                let lo = s.start.max(a);
                let span = s.end.min(b).saturating_sub(lo).as_secs_f64();
                let dt = rng.gen::<f64>() * span;
                let arrival = lo + SimDuration::from_secs_f64(dt);
                let object = ObjectId(self.popularity.sample(&mut rng) as u64);
                let size = lognormal_mean_cv(&mut rng, self.spec.mean_size_bytes, self.spec.size_cv)
                    .max(512.0) as u64;
                let req = if rng.gen::<f64>() < self.spec.read_fraction {
                    IoRequest::read(arrival, object, size)
                } else {
                    IoRequest::write(arrival, object, size)
                };
                out.push(req);
            }
        }
    }

    /// Expected disk busy-seconds the slot's requests will cost, assuming
    /// random access at `service_secs_per_byte` + `positioning_secs` each —
    /// the planner's load estimate.
    pub fn expected_busy_secs_in_slot(
        &self,
        clock: SlotClock,
        slot: usize,
        positioning_secs: f64,
        secs_per_byte: f64,
    ) -> f64 {
        let rate = self.expected_rate_in_slot(clock, slot);
        let width_s = clock.width().as_secs_f64();
        rate * width_s * (positioning_secs + self.spec.mean_size_bytes * secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_storage::IoKind;
    use proptest::test_runner::TestRng;

    fn generator() -> InteractiveGenerator {
        let mut spec = InteractiveSpec::medium_week(1_000);
        spec.streams = 100; // keep tests fast
        InteractiveGenerator::new(spec, &RngFactory::new(42))
    }

    /// The naive reference: every stream, overlap test per slot.
    fn naive_live(g: &InteractiveGenerator, clock: SlotClock, slot: usize) -> Vec<u32> {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        (0..g.stream_count())
            .filter(|&i| g.stream(i).overlap(a, b) > SimDuration::ZERO)
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn population_size_and_ordering() {
        let g = generator();
        assert_eq!(g.stream_count(), 100);
        for i in 1..g.stream_count() {
            assert!(g.stream(i - 1).start <= g.stream(i).start);
        }
        for i in 0..g.stream_count() {
            assert!(g.stream(i).end > g.stream(i).start);
        }
    }

    #[test]
    fn slot_synthesis_is_deterministic() {
        let g1 = generator();
        let g2 = generator();
        let c = SlotClock::hourly();
        let a = g1.requests_in_slot(c, 40);
        let b = g2.requests_in_slot(c, 40);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.object, y.object);
            assert_eq!(x.size_bytes, y.size_bytes);
        }
    }

    #[test]
    fn requests_fall_inside_slot_and_stream() {
        let g = generator();
        let c = SlotClock::hourly();
        for slot in [10usize, 50, 100] {
            for r in g.requests_in_slot(c, slot) {
                assert!(r.arrival >= c.slot_start(slot) && r.arrival < c.slot_end(slot));
                assert!(r.size_bytes >= 512);
                assert!(r.object.0 < 1_000);
            }
        }
    }

    #[test]
    fn read_write_mix_approximates_spec() {
        let g = generator();
        let c = SlotClock::hourly();
        let mut reads = 0usize;
        let mut total = 0usize;
        for slot in 0..168 {
            for r in g.requests_in_slot(c, slot) {
                total += 1;
                if r.kind == IoKind::Read {
                    reads += 1;
                }
            }
        }
        assert!(total > 1_000, "enough requests to judge the mix: {total}");
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.70).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn diurnal_peaks_in_afternoon() {
        let spec = InteractiveSpec::medium_week(10);
        let peak = spec.diurnal(SimTime::from_hours(15));
        let trough = spec.diurnal(SimTime::from_hours(3));
        assert!((peak - 1.6).abs() < 1e-9);
        assert!((trough - 0.4).abs() < 1e-9);
    }

    #[test]
    fn expected_rate_tracks_synthesis() {
        let g = generator();
        let c = SlotClock::hourly();
        // Sum expectation vs realisation over the busiest day.
        let mut expect = 0.0;
        let mut actual = 0usize;
        for slot in 24..48 {
            expect += g.expected_rate_in_slot(c, slot) * 3600.0;
            actual += g.requests_in_slot(c, slot).len();
        }
        assert!(expect > 0.0);
        let ratio = actual as f64 / expect;
        assert!((0.8..1.2).contains(&ratio), "actual/expected = {ratio}");
    }

    #[test]
    fn busy_estimate_is_positive_during_activity() {
        let g = generator();
        let c = SlotClock::hourly();
        let busy = g.expected_busy_secs_in_slot(c, 30, 0.0127, 1.0 / 140.0e6);
        assert!(busy >= 0.0);
    }

    #[test]
    fn stateless_live_query_matches_naive_scan() {
        let g = generator();
        let c = SlotClock::hourly();
        let mut live = Vec::new();
        for slot in 0..200 {
            g.live_streams_in_slot(c, slot, &mut live);
            assert_eq!(live, naive_live(&g, c, slot), "slot {slot}");
        }
    }

    #[test]
    fn cursor_matches_naive_scan_on_random_specs() {
        for case in 0..12u32 {
            let mut rng = TestRng::for_case("interactive-cursor", case);
            let mut spec = InteractiveSpec::medium_week(100);
            spec.streams = 20 + (rng.next_u64() % 300) as usize;
            spec.mean_lifetime = SimDuration::from_secs((600.0 + rng.unit_f64() * 72_000.0) as u64);
            spec.diurnal_amplitude = rng.unit_f64() * 0.9;
            spec.horizon = SimDuration::from_hours(24 + rng.next_u64() % 144);
            let g = InteractiveGenerator::new(spec, &RngFactory::new(rng.next_u64()));
            let c = SlotClock::hourly();
            let mut cursor = LiveCursor::new();
            let mut slot = 0usize;
            while slot < 180 {
                let live = cursor.advance_to(&g, c, slot).to_vec();
                assert_eq!(live, naive_live(&g, c, slot), "case {case} slot {slot}");
                // Mix of single steps and forward jumps.
                slot += 1 + (rng.next_u64() % 7) as usize;
            }
        }
    }

    #[test]
    fn fresh_cursor_seeks_to_any_slot() {
        let g = generator();
        let c = SlotClock::hourly();
        let mut walked = LiveCursor::new();
        for slot in 0..=90 {
            walked.advance_to(&g, c, slot);
        }
        let mut seeked = LiveCursor::new();
        assert_eq!(seeked.advance_to(&g, c, 90), walked.live());
    }

    #[test]
    fn cursor_resets_on_backward_move() {
        let g = generator();
        let c = SlotClock::hourly();
        let mut cursor = LiveCursor::new();
        cursor.advance_to(&g, c, 120);
        let back = cursor.advance_to(&g, c, 30).to_vec();
        assert_eq!(back, naive_live(&g, c, 30));
    }

    #[test]
    fn sharded_synthesis_concatenates_to_the_sequential_walk() {
        let g = generator();
        let c = SlotClock::hourly();
        for slot in [20usize, 40, 60] {
            let mut live = Vec::new();
            g.live_streams_in_slot(c, slot, &mut live);
            let mut whole = Vec::new();
            g.synthesize_streams_into(c, slot, &live, &mut whole);
            for shards in [2usize, 3, 7] {
                let chunk = live.len().div_ceil(shards).max(1);
                let mut stitched = Vec::new();
                for part in live.chunks(chunk) {
                    g.synthesize_streams_into(c, slot, part, &mut stitched);
                }
                assert_eq!(stitched, whole, "slot {slot}, {shards} shards");
            }
        }
    }

    #[test]
    fn per_stream_rng_is_the_keyed_stream_discipline() {
        // The seed column + slot mix must reproduce
        // RngFactory::keyed_stream("interactive-req", i, slot) exactly —
        // that is the published re-keying contract of the shard kernel.
        let rngs = RngFactory::new(42);
        let g = generator();
        let base = rngs.seed_for("interactive-req");
        for (i, slot) in [(0usize, 7u64), (13, 40), (99, 0)] {
            let expected = RngFactory::keyed_seed(base, i as u64, slot);
            let mut state = g.cols.req_seed[i] ^ slot.wrapping_mul(KEY_B);
            assert_eq!(splitmix64(&mut state), expected, "stream {i} slot {slot}");
        }
    }

    #[test]
    fn thinning_loop_is_bounded() {
        let spec = InteractiveSpec::medium_week(100);
        let err = InteractiveGenerator::try_new_bounded(spec, &RngFactory::new(1), 3)
            .expect_err("a 3-iteration cap cannot build 787 streams");
        match err {
            InteractiveError::ThinningStalled { target, accepted, iterations } => {
                assert_eq!(target, 787);
                assert!(accepted <= 3);
                assert_eq!(iterations, 3);
            }
        }
        // The default cap is generous: normal specs build fine.
        assert!(InteractiveGenerator::try_new(
            InteractiveSpec::medium_week(100),
            &RngFactory::new(1)
        )
        .is_ok());
    }
}
