//! Assembled workloads and trace import/export.
//!
//! A [`Workload`] is the pair (interactive generator, batch job list) built
//! from a [`WorkloadSpec`] and a master seed. The **medium-week preset**
//! mirrors the shape of the medium-private-cloud traces this literature
//! evaluates on; the **small preset** is the same shape scaled down for
//! tests and examples.
//!
//! Batch jobs can be exported to and re-imported from a simple CSV format
//! (one row per job), the substitution point for a user's real trace.

use crate::batch::{BatchGenerator, BatchSpec};
use crate::columns::RequestBatch;
use crate::interactive::{InteractiveGenerator, InteractiveSpec};
use crate::job::{BatchJob, BatchKind, JobId, JobState};
use gm_sim::pool::Task;
use gm_sim::time::SimTime;
use gm_sim::{RngFactory, SlotClock, WorkPool};
use gm_storage::IoRequest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Full workload parameterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Interactive half.
    pub interactive: InteractiveSpec,
    /// Batch half.
    pub batch: BatchSpec,
}

impl WorkloadSpec {
    /// The medium-DC non-holiday week (≈790 streams, ≈3150 batch jobs).
    pub fn medium_week(objects: usize) -> Self {
        WorkloadSpec {
            interactive: InteractiveSpec::medium_week(objects),
            batch: BatchSpec::medium_week(),
        }
    }

    /// A scaled-down week for tests and examples (~1/8 of medium).
    pub fn small_week(objects: usize) -> Self {
        let mut spec = WorkloadSpec::medium_week(objects);
        spec.interactive.streams = 100;
        spec.batch.jobs = 400;
        spec.batch.mean_bytes /= 4.0;
        spec
    }

    /// The mega preset: the medium week with its interactive half split
    /// across **one million** streams at constant aggregate request volume
    /// — the scale proof of the interval-indexed workload kernel. Memory:
    /// the population is ~32 MB of columns; synthesis cost per slot is
    /// proportional to *live* streams, not the population.
    pub fn mega_week(objects: usize) -> Self {
        WorkloadSpec::medium_week(objects).with_interactive_streams(1_000_000)
    }

    /// Re-spread the interactive half across `streams` sessions, scaling
    /// the per-stream rate inversely so the *aggregate* request volume (and
    /// thus the served byte volume) stays what the preset calibrated.
    pub fn with_interactive_streams(mut self, streams: usize) -> Self {
        assert!(streams > 0);
        let old = self.interactive.streams as f64;
        self.interactive.rate_rps *= old / streams as f64;
        self.interactive.streams = streams;
        self
    }

    /// Scale both halves' volume by `k` (streams and jobs), keeping shapes.
    pub fn scaled(mut self, k: f64) -> Self {
        assert!(k > 0.0);
        self.interactive.streams = ((self.interactive.streams as f64 * k).round() as usize).max(1);
        self.batch.jobs = ((self.batch.jobs as f64 * k).round() as usize).max(1);
        self
    }
}

/// Live-set size below which sharded synthesis is not worth the fan-out
/// overhead (task boxing + result stitching).
const SHARD_THRESHOLD: usize = 8_192;
/// Minimum number of live streams per shard once sharding kicks in.
const STREAMS_PER_SHARD: usize = 2_048;

/// A generated workload.
pub struct Workload {
    spec: WorkloadSpec,
    /// `Arc` so shard tasks borrow the generator without copying the
    /// (potentially tens of MB) stream columns.
    interactive: Arc<InteractiveGenerator>,
    batch_jobs: Vec<BatchJob>,
    /// Memoised columnar slot batches, keyed by `(slot width, slot)` —
    /// the two inputs of request synthesis beyond the workload itself.
    /// Shared-world sweeps therefore synthesise each slot's requests once
    /// across all runs. The per-key `OnceLock` keeps concurrent misses
    /// single-build without holding the map lock while synthesising.
    slot_batches: Mutex<HashMap<(u64, usize), SlotBatchCell>>,
}

/// One memo slot: `Arc` so the map lock can be dropped while a miss
/// synthesises into the `OnceLock`.
type SlotBatchCell = Arc<OnceLock<Arc<RequestBatch>>>;

impl Workload {
    /// Build from a spec and master seed.
    pub fn generate(spec: WorkloadSpec, seed: u64) -> Self {
        let rngs = RngFactory::new(seed);
        let interactive = Arc::new(InteractiveGenerator::new(spec.interactive.clone(), &rngs));
        let batch_jobs = BatchGenerator::new(spec.batch.clone()).generate(&rngs);
        Workload { spec, interactive, batch_jobs, slot_batches: Mutex::new(HashMap::new()) }
    }

    /// The spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The interactive generator.
    pub fn interactive(&self) -> &InteractiveGenerator {
        &self.interactive
    }

    /// The batch job population (submission-ordered).
    pub fn batch_jobs(&self) -> &[BatchJob] {
        &self.batch_jobs
    }

    /// Shard count for a live set of `live` streams: 1 below the
    /// threshold, else one shard per [`STREAMS_PER_SHARD`] streams capped
    /// by the pool width.
    fn auto_shards(live: usize) -> usize {
        if live < SHARD_THRESHOLD {
            1
        } else {
            WorkPool::global().width().min(live / STREAMS_PER_SHARD).max(1)
        }
    }

    /// Synthesise the requests of the given live streams, fanned across
    /// `shards` pool tasks, and return them in canonical slot order.
    ///
    /// **Shard-invariant by construction**: each stream's requests come
    /// from its own `(stream, slot)`-keyed RNG, shards cover disjoint
    /// contiguous ranges of the ascending live list, results are stitched
    /// by shard index, and one stable sort by arrival produces the
    /// canonical order. The output is byte-identical for every `shards`
    /// value and thread count (a property test pins this).
    fn synthesize_live(
        &self,
        clock: SlotClock,
        slot: usize,
        live: &[u32],
        shards: usize,
    ) -> Vec<IoRequest> {
        let shards = shards.clamp(1, live.len().max(1));
        let mut out = Vec::new();
        if shards == 1 {
            self.interactive.synthesize_streams_into(clock, slot, live, &mut out);
        } else {
            let chunk = live.len().div_ceil(shards);
            let cells: Arc<Vec<Mutex<Vec<IoRequest>>>> =
                Arc::new((0..shards).map(|_| Mutex::new(Vec::new())).collect());
            let tasks: Vec<Task> = live
                .chunks(chunk)
                .enumerate()
                .map(|(k, part)| {
                    let generator = Arc::clone(&self.interactive);
                    let cells = Arc::clone(&cells);
                    let part = part.to_vec();
                    Box::new(move || {
                        let mut buf = Vec::new();
                        generator.synthesize_streams_into(clock, slot, &part, &mut buf);
                        *cells[k].lock().expect("shard cell") = buf;
                    }) as Task
                })
                .collect();
            WorkPool::global().scatter(tasks);
            for cell in cells.iter() {
                out.append(&mut cell.lock().expect("shard cell"));
            }
        }
        out.sort_by_key(|r| r.arrival); // stable: ties keep stream order
        out
    }

    /// Synthesise one slot's requests with an explicit shard count —
    /// exposed so tests can assert byte-identity across shard counts.
    /// Equals [`Self::requests_in_slot`] for every `shards ≥ 1`.
    pub fn synthesize_slot_requests(
        &self,
        clock: SlotClock,
        slot: usize,
        shards: usize,
    ) -> Vec<IoRequest> {
        let mut live = Vec::new();
        self.interactive.live_streams_in_slot(clock, slot, &mut live);
        self.synthesize_live(clock, slot, &live, shards)
    }

    /// Requests of one slot (stateless live query + auto-sharded
    /// synthesis).
    pub fn requests_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<IoRequest> {
        let mut live = Vec::new();
        self.interactive.live_streams_in_slot(clock, slot, &mut live);
        self.synthesize_live(clock, slot, &live, Self::auto_shards(live.len()))
    }

    /// [`Self::requests_in_slot`] into a caller-owned buffer (cleared
    /// first) — the allocation-free form for callers that need an
    /// array-of-structs view.
    pub fn requests_in_slot_into(&self, clock: SlotClock, slot: usize, out: &mut Vec<IoRequest>) {
        self.interactive.requests_in_slot_into(clock, slot, out);
    }

    /// The slot's requests as a memoised columnar [`RequestBatch`] — the
    /// form the simulation hot loop uses.
    ///
    /// The batch holds the identical requests in the identical order as
    /// [`Self::requests_in_slot`]; it is synthesised at most once per
    /// `(clock width, slot)` for the life of this workload and shared as
    /// an `Arc` thereafter, so runs over a cached shared world skip
    /// re-synthesis entirely.
    pub fn slot_batch(&self, clock: SlotClock, slot: usize) -> Arc<RequestBatch> {
        self.slot_batch_inner(clock, slot, None)
    }

    /// [`Self::slot_batch`] for callers that already know the slot's live
    /// stream set (the simulation's advancing [`crate::interactive::LiveCursor`]) —
    /// skips the stateless live query on a memo miss. `live` must equal
    /// the stateless set (debug-asserted); the returned batch is
    /// byte-identical to [`Self::slot_batch`]'s.
    pub fn slot_batch_with_live(
        &self,
        clock: SlotClock,
        slot: usize,
        live: &[u32],
    ) -> Arc<RequestBatch> {
        self.slot_batch_inner(clock, slot, Some(live))
    }

    fn slot_batch_inner(
        &self,
        clock: SlotClock,
        slot: usize,
        live: Option<&[u32]>,
    ) -> Arc<RequestBatch> {
        let key = (clock.width().0, slot);
        let cell = {
            let mut map = self.slot_batches.lock().expect("slot batch lock");
            map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        cell.get_or_init(|| {
            let mut fallback = Vec::new();
            let live = match live {
                Some(l) => {
                    #[cfg(debug_assertions)]
                    {
                        let mut check = Vec::new();
                        self.interactive.live_streams_in_slot(clock, slot, &mut check);
                        debug_assert_eq!(l, &check[..], "cursor live set diverged (slot {slot})");
                    }
                    l
                }
                None => {
                    self.interactive.live_streams_in_slot(clock, slot, &mut fallback);
                    &fallback
                }
            };
            let requests = self.synthesize_live(clock, slot, live, Self::auto_shards(live.len()));
            Arc::new(RequestBatch::from_requests(&requests))
        })
        .clone()
    }

    /// Batch jobs submitted within slot `slot`.
    pub fn batch_arrivals_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<BatchJob> {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        self.batch_jobs.iter().filter(|j| j.submit >= a && j.submit < b).cloned().collect()
    }

    /// Total batch bytes over the horizon.
    pub fn total_batch_bytes(&self) -> u64 {
        self.batch_jobs.iter().map(|j| j.total_bytes).sum()
    }

    /// Replace the batch population (trace substitution).
    pub fn with_batch_jobs(mut self, jobs: Vec<BatchJob>) -> Self {
        self.batch_jobs = jobs;
        self.batch_jobs.sort_by_key(|j| j.submit);
        self
    }
}

/// Serialize batch jobs to the CSV trace format:
/// `id,kind,submit_us,deadline_us,total_bytes`.
pub fn batch_jobs_to_csv(jobs: &[BatchJob]) -> String {
    let mut out = String::from("id,kind,submit_us,deadline_us,total_bytes\n");
    for j in jobs {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            j.id.0,
            j.kind.label(),
            j.submit.0,
            j.deadline.0,
            j.total_bytes
        ));
    }
    out
}

/// Parse the CSV trace format produced by [`batch_jobs_to_csv`].
pub fn batch_jobs_from_csv(csv: &str) -> Result<Vec<BatchJob>, String> {
    let mut jobs = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / blanks
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("line {}: expected 5 fields, got {}", lineno + 1, fields.len()));
        }
        let id = fields[0].parse::<u64>().map_err(|e| format!("line {}: id: {e}", lineno + 1))?;
        let kind = match fields[1] {
            "scrub" => BatchKind::Scrub,
            "backup" => BatchKind::Backup,
            "analytics" => BatchKind::Analytics,
            "repair" => BatchKind::Repair,
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        };
        let submit = SimTime(
            fields[2].parse::<u64>().map_err(|e| format!("line {}: submit: {e}", lineno + 1))?,
        );
        let deadline = SimTime(
            fields[3].parse::<u64>().map_err(|e| format!("line {}: deadline: {e}", lineno + 1))?,
        );
        let bytes =
            fields[4].parse::<u64>().map_err(|e| format!("line {}: bytes: {e}", lineno + 1))?;
        if deadline <= submit {
            return Err(format!("line {}: deadline {deadline:?} <= submit {submit:?}", lineno + 1));
        }
        if bytes == 0 {
            return Err(format!("line {}: zero-byte job", lineno + 1));
        }
        jobs.push(BatchJob {
            id: JobId(id),
            kind,
            submit,
            deadline,
            total_bytes: bytes,
            remaining_bytes: bytes,
            state: JobState::Pending,
        });
    }
    jobs.sort_by_key(|j| j.submit);
    Ok(jobs)
}

/// A convenience summary of a workload used by reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of interactive streams.
    pub streams: usize,
    /// Number of batch jobs.
    pub batch_jobs: usize,
    /// Total batch bytes.
    pub batch_bytes: u64,
    /// Horizon in hours.
    pub horizon_hours: f64,
}

impl Workload {
    /// Build a summary.
    pub fn summary(&self) -> WorkloadSummary {
        WorkloadSummary {
            streams: self.interactive.stream_count(),
            batch_jobs: self.batch_jobs.len(),
            batch_bytes: self.total_batch_bytes(),
            horizon_hours: self.spec.interactive.horizon.as_hours_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        Workload::generate(WorkloadSpec::small_week(1_000), 11)
    }

    #[test]
    fn generates_both_halves() {
        let w = small();
        assert_eq!(w.interactive().stream_count(), 100);
        assert_eq!(w.batch_jobs().len(), 400);
        assert!(w.total_batch_bytes() > 0);
        let s = w.summary();
        assert_eq!(s.streams, 100);
        assert_eq!(s.batch_jobs, 400);
        assert!((s.horizon_hours - 168.0).abs() < 1e-9);
    }

    #[test]
    fn batch_arrivals_partition_the_week() {
        let w = small();
        let c = SlotClock::hourly();
        let total: usize = (0..168).map(|s| w.batch_arrivals_in_slot(c, s).len()).sum();
        assert_eq!(total, 400, "every job arrives in exactly one slot");
    }

    #[test]
    fn slot_batch_matches_row_synthesis_and_memoises() {
        let w = small();
        let c = SlotClock::hourly();
        let rows = w.requests_in_slot(c, 40);
        let batch = w.slot_batch(c, 40);
        assert_eq!(batch.iter().collect::<Vec<_>>(), rows, "columns mirror the row form");
        let again = w.slot_batch(c, 40);
        assert!(Arc::ptr_eq(&batch, &again), "second lookup is a memo hit");
        // A different clock width is a different synthesis — distinct entry.
        let wide = SlotClock::new(gm_sim::SimDuration::from_hours(2));
        assert!(!Arc::ptr_eq(&batch, &w.slot_batch(wide, 40)));
    }

    #[test]
    fn csv_roundtrip() {
        let w = small();
        let csv = batch_jobs_to_csv(w.batch_jobs());
        let parsed = batch_jobs_from_csv(&csv).expect("roundtrip parses");
        assert_eq!(parsed, w.batch_jobs());
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(batch_jobs_from_csv("id,kind\n1,scrub").is_err());
        assert!(batch_jobs_from_csv("header\n1,frobnicate,0,100,5\n").is_err(), "unknown kind");
        assert!(
            batch_jobs_from_csv("header\n1,scrub,100,100,5\n").is_err(),
            "deadline not after submit"
        );
        assert!(batch_jobs_from_csv("header\n1,scrub,0,100,0\n").is_err(), "zero bytes");
        assert!(batch_jobs_from_csv("header\n1,scrub,x,100,5\n").is_err(), "bad number");
        // Header-only is fine.
        assert_eq!(
            batch_jobs_from_csv("id,kind,submit_us,deadline_us,total_bytes\n").unwrap(),
            vec![]
        );
    }

    #[test]
    fn with_batch_jobs_substitutes_trace() {
        let w = small();
        let custom = vec![BatchJob::new(
            JobId(999),
            BatchKind::Backup,
            SimTime::from_hours(1),
            SimTime::from_hours(5),
            42,
        )];
        let w = w.with_batch_jobs(custom.clone());
        assert_eq!(w.batch_jobs(), &custom[..]);
    }

    #[test]
    fn scaled_spec_scales_counts() {
        let spec = WorkloadSpec::medium_week(100).scaled(0.5);
        assert_eq!(spec.interactive.streams, 394);
        assert_eq!(spec.batch.jobs, 1_574);
    }

    #[test]
    fn with_interactive_streams_preserves_aggregate_rate() {
        let base = WorkloadSpec::medium_week(100);
        let spread = base.clone().with_interactive_streams(10_000);
        assert_eq!(spread.interactive.streams, 10_000);
        let before = base.interactive.streams as f64 * base.interactive.rate_rps;
        let after = spread.interactive.streams as f64 * spread.interactive.rate_rps;
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn synthesis_is_shard_count_invariant() {
        let w = small();
        let c = SlotClock::hourly();
        for slot in [10usize, 40, 90] {
            let one = w.synthesize_slot_requests(c, slot, 1);
            assert!(!one.is_empty(), "slot {slot} should have traffic");
            for shards in [2usize, 3, 5, 16] {
                assert_eq!(
                    w.synthesize_slot_requests(c, slot, shards),
                    one,
                    "slot {slot}, {shards} shards"
                );
            }
            assert_eq!(w.requests_in_slot(c, slot), one, "auto-sharded path");
        }
    }

    #[test]
    fn slot_batch_with_live_matches_plain_batch() {
        let a = small();
        let b = small();
        let c = SlotClock::hourly();
        let mut cursor = crate::interactive::LiveCursor::new();
        for slot in 0..60 {
            let live = cursor.advance_to(a.interactive(), c, slot).to_vec();
            let via_cursor = a.slot_batch_with_live(c, slot, &live);
            let plain = b.slot_batch(c, slot);
            assert_eq!(
                via_cursor.iter().collect::<Vec<_>>(),
                plain.iter().collect::<Vec<_>>(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let a = Workload::generate(WorkloadSpec::small_week(500), 3);
        let b = Workload::generate(WorkloadSpec::small_week(500), 3);
        assert_eq!(a.batch_jobs(), b.batch_jobs());
        let c = SlotClock::hourly();
        assert_eq!(a.requests_in_slot(c, 77).len(), b.requests_in_slot(c, 77).len());
    }
}
