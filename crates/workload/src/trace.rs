//! Assembled workloads and trace import/export.
//!
//! A [`Workload`] is the pair (interactive generator, batch job list) built
//! from a [`WorkloadSpec`] and a master seed. The **medium-week preset**
//! mirrors the shape of the medium-private-cloud traces this literature
//! evaluates on; the **small preset** is the same shape scaled down for
//! tests and examples.
//!
//! Batch jobs can be exported to and re-imported from a simple CSV format
//! (one row per job), the substitution point for a user's real trace.

use crate::batch::{BatchGenerator, BatchSpec};
use crate::columns::RequestBatch;
use crate::interactive::{InteractiveGenerator, InteractiveSpec};
use crate::job::{BatchJob, BatchKind, JobId, JobState};
use gm_sim::time::SimTime;
use gm_sim::{RngFactory, SlotClock};
use gm_storage::IoRequest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Full workload parameterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Interactive half.
    pub interactive: InteractiveSpec,
    /// Batch half.
    pub batch: BatchSpec,
}

impl WorkloadSpec {
    /// The medium-DC non-holiday week (≈790 streams, ≈3150 batch jobs).
    pub fn medium_week(objects: usize) -> Self {
        WorkloadSpec {
            interactive: InteractiveSpec::medium_week(objects),
            batch: BatchSpec::medium_week(),
        }
    }

    /// A scaled-down week for tests and examples (~1/8 of medium).
    pub fn small_week(objects: usize) -> Self {
        let mut spec = WorkloadSpec::medium_week(objects);
        spec.interactive.streams = 100;
        spec.batch.jobs = 400;
        spec.batch.mean_bytes /= 4.0;
        spec
    }

    /// Scale both halves' volume by `k` (streams and jobs), keeping shapes.
    pub fn scaled(mut self, k: f64) -> Self {
        assert!(k > 0.0);
        self.interactive.streams = ((self.interactive.streams as f64 * k).round() as usize).max(1);
        self.batch.jobs = ((self.batch.jobs as f64 * k).round() as usize).max(1);
        self
    }
}

/// A generated workload.
pub struct Workload {
    spec: WorkloadSpec,
    interactive: InteractiveGenerator,
    batch_jobs: Vec<BatchJob>,
    /// Memoised columnar slot batches, keyed by `(slot width, slot)` —
    /// the two inputs of request synthesis beyond the workload itself.
    /// Shared-world sweeps therefore synthesise each slot's requests once
    /// across all runs. The per-key `OnceLock` keeps concurrent misses
    /// single-build without holding the map lock while synthesising.
    slot_batches: Mutex<HashMap<(u64, usize), SlotBatchCell>>,
}

/// One memo slot: `Arc` so the map lock can be dropped while a miss
/// synthesises into the `OnceLock`.
type SlotBatchCell = Arc<OnceLock<Arc<RequestBatch>>>;

impl Workload {
    /// Build from a spec and master seed.
    pub fn generate(spec: WorkloadSpec, seed: u64) -> Self {
        let rngs = RngFactory::new(seed);
        let interactive = InteractiveGenerator::new(spec.interactive.clone(), &rngs);
        let batch_jobs = BatchGenerator::new(spec.batch.clone()).generate(&rngs);
        Workload { spec, interactive, batch_jobs, slot_batches: Mutex::new(HashMap::new()) }
    }

    /// The spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The interactive generator.
    pub fn interactive(&self) -> &InteractiveGenerator {
        &self.interactive
    }

    /// The batch job population (submission-ordered).
    pub fn batch_jobs(&self) -> &[BatchJob] {
        &self.batch_jobs
    }

    /// Requests of one slot (delegates to the interactive generator).
    pub fn requests_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<IoRequest> {
        self.interactive.requests_in_slot(clock, slot)
    }

    /// [`Self::requests_in_slot`] into a caller-owned buffer (cleared
    /// first) — the allocation-free form for callers that need an
    /// array-of-structs view.
    pub fn requests_in_slot_into(&self, clock: SlotClock, slot: usize, out: &mut Vec<IoRequest>) {
        self.interactive.requests_in_slot_into(clock, slot, out);
    }

    /// The slot's requests as a memoised columnar [`RequestBatch`] — the
    /// form the simulation hot loop uses.
    ///
    /// The batch holds the identical requests in the identical order as
    /// [`Self::requests_in_slot`]; it is synthesised at most once per
    /// `(clock width, slot)` for the life of this workload and shared as
    /// an `Arc` thereafter, so runs over a cached shared world skip
    /// re-synthesis entirely.
    pub fn slot_batch(&self, clock: SlotClock, slot: usize) -> Arc<RequestBatch> {
        let key = (clock.width().0, slot);
        let cell = {
            let mut map = self.slot_batches.lock().expect("slot batch lock");
            map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        cell.get_or_init(|| {
            let requests = self.interactive.requests_in_slot(clock, slot);
            Arc::new(RequestBatch::from_requests(&requests))
        })
        .clone()
    }

    /// Batch jobs submitted within slot `slot`.
    pub fn batch_arrivals_in_slot(&self, clock: SlotClock, slot: usize) -> Vec<BatchJob> {
        let a = clock.slot_start(slot);
        let b = clock.slot_end(slot);
        self.batch_jobs.iter().filter(|j| j.submit >= a && j.submit < b).cloned().collect()
    }

    /// Total batch bytes over the horizon.
    pub fn total_batch_bytes(&self) -> u64 {
        self.batch_jobs.iter().map(|j| j.total_bytes).sum()
    }

    /// Replace the batch population (trace substitution).
    pub fn with_batch_jobs(mut self, jobs: Vec<BatchJob>) -> Self {
        self.batch_jobs = jobs;
        self.batch_jobs.sort_by_key(|j| j.submit);
        self
    }
}

/// Serialize batch jobs to the CSV trace format:
/// `id,kind,submit_us,deadline_us,total_bytes`.
pub fn batch_jobs_to_csv(jobs: &[BatchJob]) -> String {
    let mut out = String::from("id,kind,submit_us,deadline_us,total_bytes\n");
    for j in jobs {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            j.id.0,
            j.kind.label(),
            j.submit.0,
            j.deadline.0,
            j.total_bytes
        ));
    }
    out
}

/// Parse the CSV trace format produced by [`batch_jobs_to_csv`].
pub fn batch_jobs_from_csv(csv: &str) -> Result<Vec<BatchJob>, String> {
    let mut jobs = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / blanks
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("line {}: expected 5 fields, got {}", lineno + 1, fields.len()));
        }
        let id = fields[0].parse::<u64>().map_err(|e| format!("line {}: id: {e}", lineno + 1))?;
        let kind = match fields[1] {
            "scrub" => BatchKind::Scrub,
            "backup" => BatchKind::Backup,
            "analytics" => BatchKind::Analytics,
            "repair" => BatchKind::Repair,
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        };
        let submit = SimTime(
            fields[2].parse::<u64>().map_err(|e| format!("line {}: submit: {e}", lineno + 1))?,
        );
        let deadline = SimTime(
            fields[3].parse::<u64>().map_err(|e| format!("line {}: deadline: {e}", lineno + 1))?,
        );
        let bytes =
            fields[4].parse::<u64>().map_err(|e| format!("line {}: bytes: {e}", lineno + 1))?;
        if deadline <= submit {
            return Err(format!("line {}: deadline {deadline:?} <= submit {submit:?}", lineno + 1));
        }
        if bytes == 0 {
            return Err(format!("line {}: zero-byte job", lineno + 1));
        }
        jobs.push(BatchJob {
            id: JobId(id),
            kind,
            submit,
            deadline,
            total_bytes: bytes,
            remaining_bytes: bytes,
            state: JobState::Pending,
        });
    }
    jobs.sort_by_key(|j| j.submit);
    Ok(jobs)
}

/// A convenience summary of a workload used by reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of interactive streams.
    pub streams: usize,
    /// Number of batch jobs.
    pub batch_jobs: usize,
    /// Total batch bytes.
    pub batch_bytes: u64,
    /// Horizon in hours.
    pub horizon_hours: f64,
}

impl Workload {
    /// Build a summary.
    pub fn summary(&self) -> WorkloadSummary {
        WorkloadSummary {
            streams: self.interactive.streams().len(),
            batch_jobs: self.batch_jobs.len(),
            batch_bytes: self.total_batch_bytes(),
            horizon_hours: self.spec.interactive.horizon.as_hours_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        Workload::generate(WorkloadSpec::small_week(1_000), 11)
    }

    #[test]
    fn generates_both_halves() {
        let w = small();
        assert_eq!(w.interactive().streams().len(), 100);
        assert_eq!(w.batch_jobs().len(), 400);
        assert!(w.total_batch_bytes() > 0);
        let s = w.summary();
        assert_eq!(s.streams, 100);
        assert_eq!(s.batch_jobs, 400);
        assert!((s.horizon_hours - 168.0).abs() < 1e-9);
    }

    #[test]
    fn batch_arrivals_partition_the_week() {
        let w = small();
        let c = SlotClock::hourly();
        let total: usize = (0..168).map(|s| w.batch_arrivals_in_slot(c, s).len()).sum();
        assert_eq!(total, 400, "every job arrives in exactly one slot");
    }

    #[test]
    fn slot_batch_matches_row_synthesis_and_memoises() {
        let w = small();
        let c = SlotClock::hourly();
        let rows = w.requests_in_slot(c, 40);
        let batch = w.slot_batch(c, 40);
        assert_eq!(batch.iter().collect::<Vec<_>>(), rows, "columns mirror the row form");
        let again = w.slot_batch(c, 40);
        assert!(Arc::ptr_eq(&batch, &again), "second lookup is a memo hit");
        // A different clock width is a different synthesis — distinct entry.
        let wide = SlotClock::new(gm_sim::SimDuration::from_hours(2));
        assert!(!Arc::ptr_eq(&batch, &w.slot_batch(wide, 40)));
    }

    #[test]
    fn csv_roundtrip() {
        let w = small();
        let csv = batch_jobs_to_csv(w.batch_jobs());
        let parsed = batch_jobs_from_csv(&csv).expect("roundtrip parses");
        assert_eq!(parsed, w.batch_jobs());
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(batch_jobs_from_csv("id,kind\n1,scrub").is_err());
        assert!(batch_jobs_from_csv("header\n1,frobnicate,0,100,5\n").is_err(), "unknown kind");
        assert!(
            batch_jobs_from_csv("header\n1,scrub,100,100,5\n").is_err(),
            "deadline not after submit"
        );
        assert!(batch_jobs_from_csv("header\n1,scrub,0,100,0\n").is_err(), "zero bytes");
        assert!(batch_jobs_from_csv("header\n1,scrub,x,100,5\n").is_err(), "bad number");
        // Header-only is fine.
        assert_eq!(
            batch_jobs_from_csv("id,kind,submit_us,deadline_us,total_bytes\n").unwrap(),
            vec![]
        );
    }

    #[test]
    fn with_batch_jobs_substitutes_trace() {
        let w = small();
        let custom = vec![BatchJob::new(
            JobId(999),
            BatchKind::Backup,
            SimTime::from_hours(1),
            SimTime::from_hours(5),
            42,
        )];
        let w = w.with_batch_jobs(custom.clone());
        assert_eq!(w.batch_jobs(), &custom[..]);
    }

    #[test]
    fn scaled_spec_scales_counts() {
        let spec = WorkloadSpec::medium_week(100).scaled(0.5);
        assert_eq!(spec.interactive.streams, 394);
        assert_eq!(spec.batch.jobs, 1_574);
    }

    #[test]
    fn same_seed_same_workload() {
        let a = Workload::generate(WorkloadSpec::small_week(500), 3);
        let b = Workload::generate(WorkloadSpec::small_week(500), 3);
        assert_eq!(a.batch_jobs(), b.batch_jobs());
        let c = SlotClock::hourly();
        assert_eq!(a.requests_in_slot(c, 77).len(), b.requests_in_slot(c, 77).len());
    }
}
