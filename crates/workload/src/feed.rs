//! Incremental arrival delivery for long-lived (service-mode) runs.
//!
//! A batch run owns the whole submission-ordered job population up front
//! and walks it with a cursor. A *service* does not: arrivals materialise
//! over time, pushed by an external driver. [`EventFeed`] is the seam
//! between the two — an in-process channel of slot-stamped arrival
//! batches that the simulation's classify phase drains instead of the
//! population cursor.
//!
//! The contract that keeps service mode honest: a feed driven from the
//! same workload delivers exactly the jobs `batch_arrivals_in_slot` would
//! enumerate, in the same order, so a feed-driven run is **byte-identical**
//! to the batch replay of the same scenario (the `feed` integration tests
//! pin this end to end). Slot batches are complete-or-absent — the sender
//! stamps each batch with its slot, and [`EventFeed::take_arrivals_before`]
//! blocks until the requested slot has been delivered (or the sender hung
//! up), so a slow driver delays the clock instead of dropping work.

use crate::job::BatchJob;
use crate::trace::Workload;
use gm_sim::SlotClock;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};

/// All batch arrivals of one slot, in submission (population) order.
#[derive(Debug, Clone)]
pub struct FeedBatch {
    /// Slot the jobs arrived in.
    pub slot: usize,
    /// The arrivals; may be empty (an empty slot still advances the feed).
    pub jobs: Vec<BatchJob>,
}

/// The producer half of an [`EventFeed`]: a driver pushes one
/// [`FeedBatch`] per slot, in slot order, then drops the sender to signal
/// end-of-stream.
pub struct FeedSender {
    tx: Sender<FeedBatch>,
    next_slot: usize,
}

impl FeedSender {
    /// Deliver slot `slot`'s arrivals. Slots must be sent contiguously
    /// from 0 — an empty slot still needs its (empty) batch, so the
    /// consumer can distinguish "no arrivals" from "not delivered yet".
    ///
    /// Returns `false` if the consumer is gone (the simulation was
    /// dropped); the driver should stop producing.
    pub fn send_slot(&mut self, slot: usize, jobs: Vec<BatchJob>) -> bool {
        assert_eq!(slot, self.next_slot, "feed slots must be contiguous from 0");
        self.next_slot += 1;
        self.tx.send(FeedBatch { slot, jobs }).is_ok()
    }
}

/// The consumer half: buffers delivered batches and hands the classify
/// phase exactly the jobs submitted before each slot boundary.
pub struct EventFeed {
    rx: Receiver<FeedBatch>,
    /// Jobs delivered but not yet consumed, in submission order.
    buffer: VecDeque<BatchJob>,
    /// Highest slot fully delivered (`None` before the first batch).
    delivered_through: Option<usize>,
    /// The sender hung up: whatever is buffered is all there will be.
    closed: bool,
}

impl EventFeed {
    /// A fresh feed plus its producer half.
    pub fn new() -> (FeedSender, EventFeed) {
        let (tx, rx) = channel();
        (
            FeedSender { tx, next_slot: 0 },
            EventFeed { rx, buffer: VecDeque::new(), delivered_through: None, closed: false },
        )
    }

    /// A feed pre-loaded with the whole workload's arrivals, one batch per
    /// slot — the self-driving form a batch config uses when asked to run
    /// in feed mode. Delivery order per slot is
    /// [`Workload::batch_arrivals_in_slot`]'s population order, so feed
    /// replay is byte-identical to the cursor walk.
    pub fn replay(workload: &Workload, clock: SlotClock, slots: usize) -> EventFeed {
        let (mut tx, feed) = EventFeed::new();
        for slot in 0..slots {
            tx.send_slot(slot, workload.batch_arrivals_in_slot(clock, slot));
        }
        feed
    }

    /// Drain every buffered job submitted strictly before `slot_end` into
    /// `out` (cleared first), blocking until slot `slot` has been fully
    /// delivered or the sender hung up. Jobs are appended in delivery
    /// (submission) order.
    pub fn take_arrivals_before(
        &mut self,
        slot: usize,
        slot_end: gm_sim::time::SimTime,
        out: &mut Vec<BatchJob>,
    ) {
        out.clear();
        while !self.closed && self.delivered_through.is_none_or(|d| d < slot) {
            match self.rx.recv() {
                Ok(batch) => {
                    self.delivered_through = Some(batch.slot);
                    self.buffer.extend(batch.jobs);
                }
                Err(_) => self.closed = true,
            }
        }
        // Opportunistically absorb batches already queued (a fast driver
        // may run ahead); never blocks.
        while let Ok(batch) = self.rx.try_recv() {
            self.delivered_through = Some(batch.slot);
            self.buffer.extend(batch.jobs);
        }
        while let Some(job) = self.buffer.front() {
            if job.submit >= slot_end {
                break;
            }
            out.push(self.buffer.pop_front().expect("front exists"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkloadSpec;
    use gm_sim::time::SimTime;

    fn small_workload() -> (Workload, SlotClock, usize) {
        let clock = SlotClock::hourly();
        let w = Workload::generate(WorkloadSpec::small_week(600), 7);
        (w, clock, 7 * 24)
    }

    #[test]
    fn replay_feed_delivers_exactly_the_cursor_walk() {
        let (w, clock, slots) = small_workload();
        let mut feed = EventFeed::replay(&w, clock, slots);
        let mut out = Vec::new();
        let mut via_feed = Vec::new();
        for s in 0..slots {
            feed.take_arrivals_before(s, clock.slot_end(s), &mut out);
            via_feed.append(&mut out);
        }
        assert_eq!(via_feed, w.batch_jobs(), "feed order and content match the population");
    }

    #[test]
    fn take_respects_the_slot_boundary() {
        let (mut tx, mut feed) = EventFeed::new();
        let mk = |id: u64, submit_s: u64| {
            BatchJob::new(
                crate::job::JobId(id),
                crate::job::BatchKind::Scrub,
                SimTime::from_secs(submit_s),
                SimTime::from_secs(submit_s + 7200),
                1024,
            )
        };
        // Slot 0 delivers one job; slot 1's job is already queued too.
        tx.send_slot(0, vec![mk(1, 10)]);
        tx.send_slot(1, vec![mk(2, 3700)]);
        let clock = SlotClock::hourly();
        let mut out = Vec::new();
        feed.take_arrivals_before(0, clock.slot_end(0), &mut out);
        assert_eq!(out.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![1]);
        feed.take_arrivals_before(1, clock.slot_end(1), &mut out);
        assert_eq!(out.iter().map(|j| j.id.0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn closed_feed_stops_blocking_and_drains_the_rest() {
        let (mut tx, mut feed) = EventFeed::new();
        let job = BatchJob::new(
            crate::job::JobId(9),
            crate::job::BatchKind::Backup,
            SimTime::from_secs(5),
            SimTime::from_secs(7200),
            2048,
        );
        tx.send_slot(0, vec![job]);
        drop(tx);
        let clock = SlotClock::hourly();
        let mut out = Vec::new();
        // Asking for a slot far beyond what was delivered must not hang.
        feed.take_arrivals_before(5, clock.slot_end(5), &mut out);
        assert_eq!(out.len(), 1);
        feed.take_arrivals_before(6, clock.slot_end(6), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn out_of_order_send_panics() {
        let (mut tx, _feed) = EventFeed::new();
        tx.send_slot(1, Vec::new());
    }
}
