//! # gm-workload — storage workload generators and traces
//!
//! The workload of a massive storage system, as renewable-aware scheduling
//! sees it, has two halves:
//!
//! * **Interactive streams** ([`interactive`]) — latency-critical I/O that
//!   must be served the moment it arrives (the "web jobs" of the
//!   opportunistic-scheduling literature). Modeled as overlapping request
//!   streams with diurnal intensity, Zipf object popularity, lognormal
//!   request sizes and a configurable read/write mix. Requests are
//!   synthesised per slot from seeded streams, so every policy sees the
//!   byte-identical workload.
//! * **Batch jobs** ([`batch`], [`job`]) — deferrable bulk storage work
//!   (scrubbing, backup, analytics scans, replication repair) with a
//!   deadline and therefore *slack*: the scheduler may move it into green
//!   windows. Work is measured in bytes of sequential I/O and is divisible
//!   across slots and disks.
//!
//! [`trace`] assembles both halves into a [`trace::Workload`] with presets
//! whose *shape* mirrors the medium-private-cloud traces this literature
//! evaluates on (≈790 interactive streams of ~12 h, ≈3100 batch jobs of
//! ~6 h of work with 12 h deadlines, over one non-holiday week), plus CSV
//! import/export so external traces can be substituted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod columns;
pub mod feed;
pub mod interactive;
pub mod job;
pub mod stats;
pub mod trace;

pub use batch::BatchGenerator;
pub use columns::RequestBatch;
pub use feed::{EventFeed, FeedBatch, FeedSender};
pub use interactive::{InteractiveError, InteractiveSpec, InteractiveStream, LiveCursor};
pub use job::{BatchJob, BatchKind, JobId, JobState};
pub use stats::{characterize, WorkloadStats};
pub use trace::{Workload, WorkloadSpec};
