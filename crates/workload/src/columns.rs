//! Columnar (struct-of-arrays) request batches.
//!
//! The simulation's Execute phase historically walked a `Vec<IoRequest>`
//! per slot — an array-of-structs whose padding and field mix defeat both
//! the prefetcher and any hope of vectorising the byte accounting. A
//! [`RequestBatch`] stores the same slot's requests as parallel columns
//! (arrivals, objects, sizes, kinds), so per-column scans (total bytes,
//! read counts) run over contiguous memory and the service loop touches
//! only the columns it needs.
//!
//! Batches are immutable once built and a pure function of
//! `(workload seed, clock width, slot)`, which makes them ideal memo
//! material: [`crate::trace::Workload::slot_batch`] builds each slot's
//! batch once and hands out `Arc` clones thereafter, so a policy sweep
//! over one shared workload pays request synthesis once per slot — not
//! once per slot *per run*.

use gm_sim::time::SimTime;
use gm_storage::{IoKind, IoRequest, ObjectId};

/// One slot's interactive requests in struct-of-arrays form.
///
/// All columns have identical length; index `i` across the columns is the
/// `i`-th request in arrival order (ties preserve synthesis order, exactly
/// like the historic sorted `Vec<IoRequest>`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestBatch {
    arrivals: Vec<SimTime>,
    objects: Vec<ObjectId>,
    sizes: Vec<u64>,
    kinds: Vec<IoKind>,
}

impl RequestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RequestBatch::default()
    }

    /// Build from requests (already in arrival order).
    pub fn from_requests(requests: &[IoRequest]) -> Self {
        let mut batch = RequestBatch::with_capacity(requests.len());
        for r in requests {
            batch.push(r);
        }
        batch
    }

    /// An empty batch with per-column capacity `n`.
    pub fn with_capacity(n: usize) -> Self {
        RequestBatch {
            arrivals: Vec::with_capacity(n),
            objects: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
        }
    }

    /// Append one request to the columns.
    pub fn push(&mut self, r: &IoRequest) {
        self.arrivals.push(r.arrival);
        self.objects.push(r.object);
        self.sizes.push(r.size_bytes);
        self.kinds.push(r.kind);
    }

    /// Clear all columns (capacity retained).
    pub fn clear(&mut self) {
        self.arrivals.clear();
        self.objects.clear();
        self.sizes.clear();
        self.kinds.clear();
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Materialise request `i` (interactive requests are always
    /// random-access, mirroring [`IoRequest::read`] / [`IoRequest::write`]).
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn request(&self, i: usize) -> IoRequest {
        IoRequest {
            arrival: self.arrivals[i],
            object: self.objects[i],
            kind: self.kinds[i],
            size_bytes: self.sizes[i],
            sequential: false,
        }
    }

    /// Iterate the batch as materialised requests, in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = IoRequest> + '_ {
        (0..self.len()).map(|i| self.request(i))
    }

    /// Arrival column.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Object column.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Size column (bytes).
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Kind column.
    pub fn kinds(&self) -> &[IoKind] {
        &self.kinds
    }

    /// Total bytes across the batch — one contiguous column scan.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Number of reads — one contiguous column scan.
    pub fn read_count(&self) -> usize {
        self.kinds.iter().filter(|k| **k == IoKind::Read).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<IoRequest> {
        vec![
            IoRequest::read(SimTime(10), ObjectId(3), 4096),
            IoRequest::write(SimTime(20), ObjectId(7), 512),
            IoRequest::read(SimTime(30), ObjectId(3), 1024),
        ]
    }

    #[test]
    fn roundtrips_requests() {
        let reqs = sample();
        let batch = RequestBatch::from_requests(&reqs);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let back: Vec<IoRequest> = batch.iter().collect();
        assert_eq!(back, reqs);
        assert_eq!(batch.request(1), reqs[1]);
    }

    #[test]
    fn column_scans() {
        let batch = RequestBatch::from_requests(&sample());
        assert_eq!(batch.total_bytes(), 4096 + 512 + 1024);
        assert_eq!(batch.read_count(), 2);
        assert_eq!(batch.sizes(), &[4096, 512, 1024]);
        assert_eq!(batch.objects(), &[ObjectId(3), ObjectId(7), ObjectId(3)]);
        assert_eq!(batch.arrivals(), &[SimTime(10), SimTime(20), SimTime(30)]);
        assert_eq!(batch.kinds().len(), 3);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut batch = RequestBatch::from_requests(&sample());
        let cap = batch.sizes.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.sizes.capacity(), cap);
        assert_eq!(RequestBatch::new().len(), 0);
    }
}
