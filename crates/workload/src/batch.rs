//! Batch job generation.
//!
//! Batch jobs arrive over the horizon following the same diurnal curve as
//! interactive sessions (people submit backups and analytics during the
//! day), with kind-dependent size distributions and a fixed
//! submission-to-deadline window (12 h in the medium preset, matching the
//! "6 h of work, 12 h deadline" shape of the era's traces).

use crate::job::{BatchJob, BatchKind, JobId};
use gm_sim::dist::{exponential, lognormal_mean_cv};
use gm_sim::time::{SimDuration, SimTime};
use gm_sim::RngFactory;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the batch half of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Number of jobs over the horizon.
    pub jobs: usize,
    /// Mean job size in bytes of sequential I/O.
    pub mean_bytes: f64,
    /// Coefficient of variation of job size.
    pub size_cv: f64,
    /// Deadline window after submission.
    pub deadline_window: SimDuration,
    /// Kind mix weights, in [`BatchKind::ALL`] order.
    pub kind_weights: [f64; 4],
    /// Diurnal amplitude of the submission process.
    pub diurnal_amplitude: f64,
    /// Horizon over which jobs are submitted.
    pub horizon: SimDuration,
}

impl BatchSpec {
    /// Medium-DC preset: ≈3150 jobs of ~6 h of work each (relative to the
    /// cluster's aggregate sequential bandwidth share) with 12 h deadlines.
    pub fn medium_week() -> Self {
        BatchSpec {
            jobs: 3_148,
            mean_bytes: 200.0 * 1024.0 * 1024.0 * 1024.0, // 200 GiB
            size_cv: 1.0,
            deadline_window: SimDuration::from_hours(12),
            kind_weights: [0.35, 0.25, 0.25, 0.15],
            diurnal_amplitude: 0.5,
            horizon: SimDuration::from_days(7),
        }
    }
}

/// Draws a batch-job population deterministically from a seed.
#[derive(Debug, Clone)]
pub struct BatchGenerator {
    spec: BatchSpec,
}

impl BatchGenerator {
    /// Generator for a spec.
    pub fn new(spec: BatchSpec) -> Self {
        assert!(spec.jobs > 0);
        assert!(spec.mean_bytes > 0.0);
        BatchGenerator { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &BatchSpec {
        &self.spec
    }

    /// Generate the full job population, sorted by submission time.
    pub fn generate(&self, rngs: &RngFactory) -> Vec<BatchJob> {
        let mut rng = rngs.stream("batch-jobs");
        let horizon_s = self.spec.horizon.as_secs_f64();
        let base_rate = self.spec.jobs as f64 / horizon_s * 2.0;
        let total_w: f64 = self.spec.kind_weights.iter().sum();
        let mut jobs = Vec::with_capacity(self.spec.jobs);
        let mut t = 0.0;
        let mut id = 0u64;
        while jobs.len() < self.spec.jobs {
            t += exponential(&mut rng, base_rate);
            if t >= horizon_s {
                t -= horizon_s;
            }
            let submit = SimTime::ZERO + SimDuration::from_secs_f64(t);
            // Diurnal thinning, same curve family as interactive sessions.
            let h = submit.hour_of_day();
            let diurnal = 1.0
                + self.spec.diurnal_amplitude * ((h - 15.0) / 24.0 * std::f64::consts::TAU).cos();
            if rng.gen::<f64>() > diurnal / (1.0 + self.spec.diurnal_amplitude) {
                continue;
            }
            // Kind by weighted draw.
            let mut pick = rng.gen::<f64>() * total_w;
            let mut kind = BatchKind::Scrub;
            for (k, &w) in BatchKind::ALL.iter().zip(&self.spec.kind_weights) {
                if pick < w {
                    kind = *k;
                    break;
                }
                pick -= w;
            }
            let bytes = lognormal_mean_cv(&mut rng, self.spec.mean_bytes, self.spec.size_cv)
                .max(1.0) as u64;
            jobs.push(BatchJob::new(
                JobId(id),
                kind,
                submit,
                submit + self.spec.deadline_window,
                bytes,
            ));
            id += 1;
        }
        jobs.sort_by_key(|j| j.submit);
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BatchSpec {
        let mut s = BatchSpec::medium_week();
        s.jobs = 200;
        s
    }

    #[test]
    fn generates_requested_count_sorted() {
        let jobs = BatchGenerator::new(small_spec()).generate(&RngFactory::new(1));
        assert_eq!(jobs.len(), 200);
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        for j in &jobs {
            assert_eq!(j.deadline.duration_since(j.submit), SimDuration::from_hours(12));
            assert!(j.total_bytes > 0);
            assert!(j.submit < SimTime::ZERO + SimDuration::from_days(7));
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let g = BatchGenerator::new(small_spec());
        let a = g.generate(&RngFactory::new(5));
        let b = g.generate(&RngFactory::new(5));
        assert_eq!(a, b);
        let c = g.generate(&RngFactory::new(6));
        assert_ne!(a, c);
    }

    #[test]
    fn mean_size_close_to_spec() {
        let mut spec = small_spec();
        spec.jobs = 2_000;
        let jobs = BatchGenerator::new(spec.clone()).generate(&RngFactory::new(2));
        let mean = jobs.iter().map(|j| j.total_bytes as f64).sum::<f64>() / jobs.len() as f64;
        assert!(
            (mean - spec.mean_bytes).abs() / spec.mean_bytes < 0.1,
            "mean {mean} vs spec {}",
            spec.mean_bytes
        );
    }

    #[test]
    fn all_kinds_appear() {
        let jobs = BatchGenerator::new(small_spec()).generate(&RngFactory::new(3));
        for kind in BatchKind::ALL {
            assert!(jobs.iter().any(|j| j.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let jobs = BatchGenerator::new(small_spec()).generate(&RngFactory::new(4));
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }
}
