//! Workload characterisation.
//!
//! Computes the summary statistics a trace-driven study reports about its
//! workload (and that a user substituting a real trace should check match
//! their expectations): per-slot arrival-rate curves for both halves,
//! batch size/slack distributions, object-popularity concentration, and
//! the aggregate demand-to-capacity ratio that determines whether deferral
//! has any room at all.

use crate::job::BatchJob;
use crate::trace::Workload;
use gm_sim::time::SimDuration;
use gm_sim::{SlotClock, StreamingStats, TimeSeries};
use serde::{Deserialize, Serialize};

/// Characterisation of a workload over a horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Interactive requests per slot.
    pub interactive_rps: TimeSeries,
    /// Batch job submissions per slot.
    pub batch_arrivals: TimeSeries,
    /// Batch bytes submitted per slot.
    pub batch_bytes: TimeSeries,
    /// Batch job size distribution (bytes).
    pub job_size: DistSummary,
    /// Batch slack-at-submission distribution (hours), assuming the given
    /// reference throughput per job.
    pub slack_hours: DistSummary,
    /// Peak-to-mean ratio of the interactive rate (diurnality indicator).
    pub interactive_peak_to_mean: f64,
}

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistSummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl DistSummary {
    /// Summarise from a streaming accumulator.
    pub fn from_stats(s: &StreamingStats) -> Self {
        DistSummary {
            count: s.count(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min().unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }
}

/// Characterise `workload` over `slots` slots of `clock`, using
/// `reference_bps` as the per-job throughput assumption for slack.
pub fn characterize(
    workload: &Workload,
    clock: SlotClock,
    slots: usize,
    reference_bps: f64,
) -> WorkloadStats {
    assert!(reference_bps > 0.0);
    let mut interactive_rps = TimeSeries::zeros(clock, slots);
    let mut batch_arrivals = TimeSeries::zeros(clock, slots);
    let mut batch_bytes = TimeSeries::zeros(clock, slots);
    let slot_secs = clock.width().as_secs_f64();

    for s in 0..slots {
        let n = workload.requests_in_slot(clock, s).len();
        interactive_rps.set(s, n as f64 / slot_secs);
        let arrivals = workload.batch_arrivals_in_slot(clock, s);
        batch_arrivals.set(s, arrivals.len() as f64);
        batch_bytes.set(s, arrivals.iter().map(|j| j.total_bytes as f64).sum());
    }

    let mut size = StreamingStats::new();
    let mut slack = StreamingStats::new();
    for j in workload.batch_jobs() {
        size.record(j.total_bytes as f64);
        slack.record(job_slack_hours(j, reference_bps));
    }

    let mean_rps = interactive_rps.mean();
    let peak = interactive_rps.max();
    WorkloadStats {
        interactive_rps,
        batch_arrivals,
        batch_bytes,
        job_size: DistSummary::from_stats(&size),
        slack_hours: DistSummary::from_stats(&slack),
        interactive_peak_to_mean: if mean_rps > 0.0 { peak / mean_rps } else { 0.0 },
    }
}

/// Slack of a freshly submitted job (hours) at `reference_bps`.
pub fn job_slack_hours(job: &BatchJob, reference_bps: f64) -> f64 {
    let window = job.deadline.duration_since(job.submit);
    let work = SimDuration::from_secs_f64(job.total_bytes as f64 / reference_bps);
    window.saturating_sub(work).as_hours_f64()
}

/// Demand-to-capacity ratio: total batch bytes over the horizon, divided
/// by the cluster's sequential capacity (`disks × bps × horizon`). Above
/// ~0.8 there is little room to defer anything.
pub fn batch_demand_ratio(
    workload: &Workload,
    disks: usize,
    disk_bps: f64,
    horizon: SimDuration,
) -> f64 {
    let capacity = disks as f64 * disk_bps * horizon.as_secs_f64();
    if capacity <= 0.0 {
        return 0.0;
    }
    workload.total_batch_bytes() as f64 / capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkloadSpec;

    fn workload() -> Workload {
        Workload::generate(WorkloadSpec::small_week(500), 5)
    }

    #[test]
    fn characterisation_is_consistent() {
        let w = workload();
        let clock = SlotClock::hourly();
        let stats = characterize(&w, clock, 168, 100.0e6);
        // All jobs accounted in the arrival series.
        assert_eq!(stats.batch_arrivals.sum() as usize, w.batch_jobs().len());
        assert!((stats.batch_bytes.sum() - w.total_batch_bytes() as f64).abs() < 1.0);
        assert_eq!(stats.job_size.count as usize, w.batch_jobs().len());
        assert!(stats.job_size.mean > 0.0);
        assert!(stats.job_size.min <= stats.job_size.mean);
        assert!(stats.job_size.mean <= stats.job_size.max);
        // Diurnal interactive load: peak well above mean.
        assert!(
            stats.interactive_peak_to_mean > 1.3,
            "peak/mean {}",
            stats.interactive_peak_to_mean
        );
    }

    #[test]
    fn slack_reflects_window_minus_work() {
        use crate::job::{BatchKind, JobId};
        use gm_sim::time::SimTime;
        // 12 h window, 2 h of work at the reference rate.
        let bps = 100.0e6;
        let job = BatchJob::new(
            JobId(1),
            BatchKind::Backup,
            SimTime::from_hours(3),
            SimTime::from_hours(15),
            (2.0 * 3600.0 * bps) as u64,
        );
        assert!((job_slack_hours(&job, bps) - 10.0).abs() < 1e-9);
        // Work exceeding the window clamps at zero.
        let hopeless = BatchJob::new(
            JobId(2),
            BatchKind::Backup,
            SimTime::ZERO,
            SimTime::from_hours(1),
            (10.0 * 3600.0 * bps) as u64,
        );
        assert_eq!(job_slack_hours(&hopeless, bps), 0.0);
    }

    #[test]
    fn demand_ratio_scales() {
        let w = workload();
        let horizon = SimDuration::from_days(7);
        let r_small = batch_demand_ratio(&w, 12, 140.0e6, horizon);
        let r_big = batch_demand_ratio(&w, 192, 140.0e6, horizon);
        assert!(r_small > r_big, "fewer disks ⇒ higher pressure");
        assert!((r_small / r_big - 16.0).abs() < 1e-6);
        assert!(r_big > 0.0);
    }
}
