//! Deferrable batch jobs.
//!
//! A batch job is a quantity of **divisible sequential I/O work** (bytes)
//! with a submission time and a deadline. The scheduler may run it in any
//! slots between the two; *slack* is the scheduling freedom left. When
//! slack reaches zero the job must run at full available rate regardless of
//! energy (the "promoted to web job" rule of opportunistic scheduling).

use gm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Batch job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// What kind of bulk work the job is (affects nothing but reporting and the
/// gear the work prefers; all kinds are sequential-I/O measured in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchKind {
    /// Integrity scrub: read-verify a slice of the data set.
    Scrub,
    /// Backup: stream a slice out (reads).
    Backup,
    /// Analytics scan: map over a slice (reads).
    Analytics,
    /// Replication repair: re-write replicas (writes).
    Repair,
    /// Tier migration: replicated↔erasure-coded placement change
    /// (reads + writes). Spawned by the classifier, never by generators.
    Migration,
}

impl BatchKind {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            BatchKind::Scrub => "scrub",
            BatchKind::Backup => "backup",
            BatchKind::Analytics => "analytics",
            BatchKind::Repair => "repair",
            BatchKind::Migration => "migration",
        }
    }

    /// All *generator-drawn* kinds (migration jobs come only from the
    /// temperature classifier, so weights and coverage exclude them).
    pub const ALL: [BatchKind; 4] =
        [BatchKind::Scrub, BatchKind::Backup, BatchKind::Analytics, BatchKind::Repair];
}

/// Lifecycle state of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, some work remaining.
    Pending,
    /// All work done (at the contained completion instant).
    Done {
        /// Completion instant.
        at: SimTime,
    },
}

/// A deferrable batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Identifier.
    pub id: JobId,
    /// Kind of work.
    pub kind: BatchKind,
    /// Submission instant.
    pub submit: SimTime,
    /// Deadline instant.
    pub deadline: SimTime,
    /// Total work in bytes of sequential I/O.
    pub total_bytes: u64,
    /// Work not yet performed.
    pub remaining_bytes: u64,
    /// Lifecycle state.
    pub state: JobState,
}

impl BatchJob {
    /// A new pending job.
    pub fn new(id: JobId, kind: BatchKind, submit: SimTime, deadline: SimTime, bytes: u64) -> Self {
        assert!(deadline > submit, "deadline must follow submission");
        assert!(bytes > 0, "a job needs work");
        BatchJob {
            id,
            kind,
            submit,
            deadline,
            total_bytes: bytes,
            remaining_bytes: bytes,
            state: JobState::Pending,
        }
    }

    /// Whether the job still has work.
    pub fn is_pending(&self) -> bool {
        matches!(self.state, JobState::Pending)
    }

    /// Perform up to `bytes` of the job's work at instant `now`. Returns
    /// the bytes actually consumed from the job.
    pub fn perform(&mut self, bytes: u64, now: SimTime) -> u64 {
        let take = bytes.min(self.remaining_bytes);
        self.remaining_bytes -= take;
        if self.remaining_bytes == 0 && self.is_pending() {
            self.state = JobState::Done { at: now };
        }
        take
    }

    /// Time needed to finish the remaining work at `throughput_bps`.
    pub fn time_to_finish(&self, throughput_bps: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.remaining_bytes as f64 / throughput_bps)
    }

    /// Slack at `now` given an achievable `throughput_bps`: the time the
    /// job can still be deferred and meet its deadline. Zero (not negative)
    /// when the job is already critical or late.
    pub fn slack(&self, now: SimTime, throughput_bps: f64) -> SimDuration {
        if now >= self.deadline {
            return SimDuration::ZERO;
        }
        self.deadline.duration_since(now).saturating_sub(self.time_to_finish(throughput_bps))
    }

    /// Whether the job must run *now* to meet its deadline at the given
    /// throughput.
    pub fn is_critical(&self, now: SimTime, throughput_bps: f64) -> bool {
        self.is_pending() && self.slack(now, throughput_bps) == SimDuration::ZERO
    }

    /// Whether the job finished by its deadline (meaningful once done or
    /// once `now` is past the deadline).
    pub fn met_deadline(&self) -> Option<bool> {
        match self.state {
            JobState::Done { at } => Some(at <= self.deadline),
            JobState::Pending => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(bytes: u64) -> BatchJob {
        BatchJob::new(
            JobId(1),
            BatchKind::Scrub,
            SimTime::from_hours(0),
            SimTime::from_hours(12),
            bytes,
        )
    }

    #[test]
    fn perform_consumes_and_completes() {
        let mut j = job(1000);
        assert!(j.is_pending());
        assert_eq!(j.perform(400, SimTime::from_hours(1)), 400);
        assert_eq!(j.remaining_bytes, 600);
        assert!(j.is_pending());
        // Over-asking consumes only what's left.
        assert_eq!(j.perform(10_000, SimTime::from_hours(2)), 600);
        assert_eq!(j.state, JobState::Done { at: SimTime::from_hours(2) });
        assert_eq!(j.met_deadline(), Some(true));
        // Performing on a done job is a no-op.
        assert_eq!(j.perform(5, SimTime::from_hours(3)), 0);
    }

    #[test]
    fn late_completion_misses_deadline() {
        let mut j = job(100);
        j.perform(100, SimTime::from_hours(13));
        assert_eq!(j.met_deadline(), Some(false));
    }

    #[test]
    fn slack_shrinks_with_time_and_work() {
        // 3600s of work at 1 B/s… use bytes = throughput×secs for clarity:
        // 1 MB at 1 kB/s = 1000 s to finish.
        let j = job(1_000_000);
        let bps = 1_000.0;
        let slack0 = j.slack(SimTime::ZERO, bps);
        // 12 h − 1000 s.
        assert_eq!(slack0, SimDuration::from_hours(12) - SimDuration::from_secs(1_000));
        let slack_later = j.slack(SimTime::from_hours(6), bps);
        assert_eq!(slack_later, SimDuration::from_hours(6) - SimDuration::from_secs(1_000));
        assert!(!j.is_critical(SimTime::ZERO, bps));
    }

    #[test]
    fn critical_when_slack_exhausted() {
        // Needs 11 h of work with a 12 h window: critical after 1 h.
        let j = job((11.0 * 3600.0 * 1_000.0) as u64);
        let bps = 1_000.0;
        assert!(!j.is_critical(SimTime::from_mins(59), bps));
        assert!(j.is_critical(SimTime::from_hours(2), bps));
        // Past deadline: slack is zero, not negative.
        assert_eq!(j.slack(SimTime::from_hours(13), bps), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "deadline must follow submission")]
    fn bad_deadline_panics() {
        let _ = BatchJob::new(
            JobId(1),
            BatchKind::Backup,
            SimTime::from_hours(2),
            SimTime::from_hours(1),
            1,
        );
    }

    #[test]
    fn kinds_have_labels() {
        for k in BatchKind::ALL {
            assert!(!k.label().is_empty());
        }
    }
}
