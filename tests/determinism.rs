//! End-to-end determinism and seed-sensitivity across the whole pipeline.

use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_demo(seed);
    cfg.slots = 48;
    cfg.policy = PolicyKind::GreenMatch { delay_fraction: 0.5 };
    cfg
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = run_experiment(&cfg(99));
    let b = run_experiment(&cfg(99));
    assert_eq!(a.brown_kwh.to_bits(), b.brown_kwh.to_bits());
    assert_eq!(a.load_kwh.to_bits(), b.load_kwh.to_bits());
    assert_eq!(a.curtailed_kwh.to_bits(), b.curtailed_kwh.to_bits());
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.latency.p99_s.to_bits(), b.latency.p99_s.to_bits());
    assert_eq!(a.gears_series, b.gears_series);
    assert_eq!(a.brown_series_wh, b.brown_series_wh);
    assert_eq!(a.spinups, b.spinups);
    assert_eq!(a.batch, b.batch);
}

#[test]
fn different_seeds_change_the_workload() {
    let a = run_experiment(&cfg(1));
    let b = run_experiment(&cfg(2));
    assert_ne!(a.latency.count, b.latency.count, "different request streams");
    assert_ne!(a.green_produced_kwh.to_bits(), b.green_produced_kwh.to_bits(), "different clouds");
}

#[test]
fn policies_see_identical_workload_and_weather() {
    // Same seed, different policies: production and request count must be
    // byte-identical — the property that makes A/B comparisons valid.
    let mut a_cfg = cfg(7);
    a_cfg.policy = PolicyKind::AllOn;
    let mut b_cfg = cfg(7);
    b_cfg.policy = PolicyKind::GreedyGreen;
    let a = run_experiment(&a_cfg);
    let b = run_experiment(&b_cfg);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.green_produced_kwh.to_bits(), b.green_produced_kwh.to_bits());
    assert_eq!(a.batch.jobs_submitted, b.batch.jobs_submitted);
    assert_eq!(a.batch.bytes_submitted, b.batch.bytes_submitted);
}
