//! The million-stream workload kernel's whole-pipeline contracts.
//!
//! The interval-indexed, shard-parallel generator is a pure performance
//! rebuild: every observable byte must be independent of shard count,
//! thread count, the `site_parallel` knob, and snapshot/resume boundaries.
//! These tests pin each of those equivalences end-to-end, on randomized
//! specs where the property is cheap and on a gated 10⁵-stream population
//! (`--ignored`, run in release by CI) where it is not.

use std::io::Write;
use std::sync::{Arc, Mutex};

use gm_sim::{RngFactory, SlotClock};
use gm_workload::interactive::{InteractiveGenerator, InteractiveSpec};
use gm_workload::trace::{Workload, WorkloadSpec};
use gm_workload::LiveCursor;
use greenmatch::config::ExperimentConfig;
use greenmatch::observe::JsonlTraceObserver;
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;
use proptest::test_runner::TestRng;

/// `io::Write` sink whose bytes remain reachable after the simulation
/// that owns the observer is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn trace_bytes(cfg: &ExperimentConfig) -> Vec<u8> {
    let buf = SharedBuf::default();
    Simulation::builder(cfg)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();
    buf.contents()
}

/// A random but well-formed interactive spec: stream counts spanning the
/// sharding threshold, lifetimes from minutes to days, horizons from one
/// day to a week.
fn random_spec(rng: &mut TestRng) -> InteractiveSpec {
    use gm_sim::time::SimDuration;
    let mut spec = InteractiveSpec::medium_week(1_000 + (rng.next_u64() % 9_000) as usize);
    spec.streams = 1 + (rng.next_u64() % 12_000) as usize;
    spec.mean_lifetime = SimDuration::from_secs(600 + rng.next_u64() % (3 * 86_400));
    // Aggregate ≈ 5–50 req/s regardless of population size, mirroring the
    // constant-volume re-spread contract — keeps synthesis volume sane.
    spec.rate_rps = (5.0 + 45.0 * rng.unit_f64()) / spec.streams as f64;
    spec.diurnal_amplitude = 0.95 * rng.unit_f64();
    spec.horizon = SimDuration::from_days(1 + rng.next_u64() % 7);
    spec
}

#[test]
fn live_cursor_matches_naive_full_scan_on_random_specs() {
    for case in 0..8u32 {
        let mut rng = TestRng::for_case("kernel-cursor-vs-scan", case);
        let spec = random_spec(&mut rng);
        let slots = (spec.horizon.as_hours_f64() as usize + 4).min(176);
        let gen = InteractiveGenerator::new(spec, &RngFactory::new(7 + case as u64));
        let clock = SlotClock::hourly();
        let mut cursor = LiveCursor::new();
        for slot in 0..slots {
            let a = clock.slot_start(slot);
            let b = clock.slot_end(slot);
            // The naive definition the index must reproduce: every stream
            // whose [start, end) intersects [slot start, slot end).
            let naive: Vec<u32> = (0..gen.stream_count() as u32)
                .filter(|&i| {
                    let s = gen.stream(i as usize);
                    s.start < b && s.end > a
                })
                .collect();
            let walked = cursor.advance_to(&gen, clock, slot).to_vec();
            assert_eq!(walked, naive, "case {case}, slot {slot}: cursor diverged");
            let mut stateless = Vec::new();
            gen.live_streams_in_slot(clock, slot, &mut stateless);
            assert_eq!(stateless, naive, "case {case}, slot {slot}: stateless query diverged");
        }
    }
}

#[test]
fn live_cursor_survives_random_seeks() {
    // Resume-by-seek: a cursor advanced along an arbitrary (even
    // backward) slot sequence must equal a fresh walk at every stop.
    for case in 0..4u32 {
        let mut rng = TestRng::for_case("kernel-cursor-seek", case);
        let spec = random_spec(&mut rng);
        let gen = InteractiveGenerator::new(spec, &RngFactory::new(100 + case as u64));
        let clock = SlotClock::hourly();
        let mut cursor = LiveCursor::new();
        for _ in 0..40 {
            let slot = (rng.next_u64() % 180) as usize;
            let jumped = cursor.advance_to(&gen, clock, slot).to_vec();
            let mut stateless = Vec::new();
            gen.live_streams_in_slot(clock, slot, &mut stateless);
            assert_eq!(jumped, stateless, "case {case}: seek to slot {slot} diverged");
        }
    }
}

#[test]
fn synthesis_is_shard_invariant_on_random_specs() {
    for case in 0..4u32 {
        let mut rng = TestRng::for_case("kernel-shard-invariance", case);
        let mut spec = WorkloadSpec::medium_week(5_000);
        spec.interactive = random_spec(&mut rng);
        let workload = Workload::generate(spec, 40 + case as u64);
        let clock = SlotClock::hourly();
        for slot in [0usize, 9, 25, 80] {
            let one = workload.synthesize_slot_requests(clock, slot, 1);
            for shards in [2usize, 3, 5, 16] {
                let many = workload.synthesize_slot_requests(clock, slot, shards);
                assert_eq!(one, many, "case {case}, slot {slot}: {shards} shards diverged");
            }
        }
    }
}

#[test]
fn snapshot_resume_is_byte_identical_with_respread_streams() {
    // The live cursor is derived state: a snapshot carries no stream
    // cursor at all, and the resumed run must re-seek and emit exactly
    // the bytes of the uninterrupted run — here with the population
    // re-spread over 8× the default stream count so the resume point
    // lands mid-lifetime for thousands of sessions.
    let mut cfg = ExperimentConfig::small_demo(21)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    cfg.workload = cfg.workload.with_interactive_streams(1_600);

    let cold = trace_bytes(&cfg);
    assert!(!cold.is_empty());

    let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
    for _ in 0..20 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = greenmatch::Snapshot::from_json(&sim.snapshot().to_json())
        .expect("snapshot survives JSON round-trip");

    let buf = SharedBuf::default();
    Simulation::builder(&cfg)
        .resume_from(&snap)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("snapshot restores")
        .run_to_end();
    let resumed = buf.contents();

    let cold_tail: Vec<u8> = {
        // Trace lines are 1:1 with slots; keep the last 28 lines (slots
        // 20..48) of the cold trace.
        let text = String::from_utf8(cold).expect("trace is utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 48, "one record per slot");
        lines[20..].join("\n").into_bytes()
    };
    let resumed_text = String::from_utf8(resumed).expect("trace is utf-8");
    assert_eq!(resumed_text.trim_end().as_bytes(), &cold_tail[..], "resumed tail diverged");
}

fn two_site_cfg() -> ExperimentConfig {
    let base = ExperimentConfig::small_demo(7)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let mut sites = base.site_configs();
    let mut east = sites[0].clone();
    east.name = "east".into();
    east.utc_offset_hours = 8;
    sites.push(east);
    base.with_sites(sites).with_wan_cost(200)
}

#[test]
fn site_parallel_traces_match_sequential_multi_site() {
    // `site_parallel` is a pure scheduling knob: the pool fan-out of
    // Forecast and Execute must reproduce the sequential per-site walk
    // byte for byte.
    let par = two_site_cfg();
    let seq = par.clone().with_site_parallel(false);
    let a = trace_bytes(&par);
    let b = trace_bytes(&seq);
    assert!(!a.is_empty(), "trace should contain records");
    assert_eq!(a, b, "site-parallel multi-site run diverged from sequential");
}

#[test]
fn site_parallel_toggle_is_inert_single_site() {
    let on = ExperimentConfig::small_demo(7).with_slots(24);
    let off = on.clone().with_site_parallel(false);
    assert_eq!(trace_bytes(&on), trace_bytes(&off));
}

/// Gated scale proof (CI runs `--ignored` in release): a 10⁵-stream
/// population stays shard-invariant and the cursor walk stays exact.
#[test]
#[ignore = "10^5-stream scale check; run with --ignored in release"]
fn hundred_thousand_stream_population_is_shard_invariant() {
    let cfg = ExperimentConfig::medium(42);
    let spec = cfg.workload.with_interactive_streams(100_000);
    let workload = Workload::generate(spec, cfg.seed);
    let clock = cfg.clock;
    let gen = workload.interactive();

    let mut cursor = LiveCursor::new();
    for slot in [0usize, 1, 2, 47, 48, 100, 167] {
        let walked = cursor.advance_to(gen, clock, slot).to_vec();
        let mut stateless = Vec::new();
        gen.live_streams_in_slot(clock, slot, &mut stateless);
        assert_eq!(walked, stateless, "slot {slot}: cursor diverged at 10^5 streams");

        let one = workload.synthesize_slot_requests(clock, slot, 1);
        for shards in [4usize, 32] {
            let many = workload.synthesize_slot_requests(clock, slot, shards);
            assert_eq!(one, many, "slot {slot}: {shards} shards diverged at 10^5 streams");
        }
    }
}
