//! Fuzz the conservation auditor across the full configuration space.
//!
//! Each case samples a random experiment (sites, chemistry, discharge
//! strategy, forecaster, policy, WAN cost, failures — the shared
//! `gm_bench::fuzzgen` generator, same one the `fuzz` binary and CI smoke
//! use) and runs it end to end under the per-slot
//! [`ConservationAuditor`](greenmatch::audit::ConservationAuditor) plus
//! the post-run deep audit. Any [`AuditViolation`] fails the case with the
//! offending configuration spelled out. Larger sweeps:
//! `cargo run --release -p gm-bench --bin fuzz -- --cases 500`.

use gm_bench::fuzzgen;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_configs_run_clean_under_the_auditor(case in 0u32..10_000) {
        let mut rng = TestRng::for_case("audit-fuzz", case);
        let cfg = fuzzgen::fuzz_config(&mut rng);
        let (report, audit) = fuzzgen::run_audited(&cfg);

        prop_assert!(
            audit.is_clean(),
            "case {case} [{}]: {}\n{}",
            fuzzgen::describe(&cfg),
            audit.summary(),
            audit
                .violations
                .iter()
                .take(10)
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        prop_assert_eq!(audit.slots_audited, cfg.slots);

        // The audited run still produces a sane report.
        prop_assert!(report.load_kwh >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.batch.miss_rate()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn random_configs_resume_byte_identically(case in 0u32..10_000) {
        // Snapshot at a random slot (including 0 and the final slot),
        // push the checkpoint through its serialized form, restore, and
        // finish under the auditor: the interruption must be invisible —
        // the stitched trace matches the cold trace byte for byte, the
        // reports are equal, and the resumed half conserves energy.
        let mut rng = TestRng::for_case("resume-fuzz", case);
        let cfg = fuzzgen::fuzz_config(&mut rng);
        let fork = (rng.next_u64() % (cfg.slots as u64 + 1)) as usize;
        let split = fuzzgen::run_split(&cfg, fork);

        prop_assert!(
            split.resumed_audit.is_clean(),
            "case {case} fork {fork} [{}]: {}\n{}",
            fuzzgen::describe(&cfg),
            split.resumed_audit.summary(),
            split
                .resumed_audit
                .violations
                .iter()
                .take(10)
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        prop_assert_eq!(split.resumed_audit.slots_audited, cfg.slots - fork);
        prop_assert_eq!(
            String::from_utf8_lossy(&split.stitched_trace),
            String::from_utf8_lossy(&split.cold_trace),
            "case {} fork {} [{}]: resumed trace diverged",
            case,
            fork,
            fuzzgen::describe(&cfg)
        );
        prop_assert_eq!(
            serde_json::to_string(&split.resumed_report).unwrap(),
            serde_json::to_string(&split.cold_report).unwrap(),
            "case {} fork {} [{}]: resumed report diverged",
            case,
            fork,
            fuzzgen::describe(&cfg)
        );
    }
}
