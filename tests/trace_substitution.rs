//! End-to-end trace substitution: a measured-style supply CSV drives a full
//! run through `SourceKind::TraceCsv`, and a custom batch-job CSV replaces
//! the synthetic batch population.

use gm_energy::traces::{trace_from_csv, trace_to_csv};
use gm_sim::{SlotClock, TimeSeries};
use gm_workload::trace::{batch_jobs_from_csv, batch_jobs_to_csv, Workload, WorkloadSpec};
use greenmatch::config::{ExperimentConfig, SourceKind};
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

#[test]
fn supply_trace_csv_drives_a_full_run() {
    // Author a 48-slot square-wave "measured" trace: 2 kW during 08:00–18:00.
    let clock = SlotClock::hourly();
    let values: Vec<f64> =
        (0..48).map(|s| if (8..18).contains(&(s % 24)) { 2_000.0 } else { 0.0 }).collect();
    let trace = TimeSeries::from_values(clock, values);
    let dir = std::env::temp_dir().join(format!("gm-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("measured.csv");
    std::fs::write(&path, trace_to_csv(&trace)).expect("write trace");

    let mut cfg = ExperimentConfig::small_demo(9);
    cfg.slots = 48;
    cfg.policy = PolicyKind::GreenMatch { delay_fraction: 1.0 };
    cfg.energy.source =
        SourceKind::TraceCsv { label: "square".into(), path: path.to_string_lossy().into_owned() };
    let r = run_experiment(&cfg);

    // Exactly the trace's energy was produced: 2 kW × 10 h × 2 days.
    assert!((r.green_produced_kwh - 40.0).abs() < 1e-6, "{}", r.green_produced_kwh);
    assert_eq!(r.source, "trace:square");
    // And the materialised trace round-trips through the parser.
    let parsed =
        trace_from_csv(&std::fs::read_to_string(&path).expect("read"), clock).expect("parse");
    assert_eq!(parsed.values().len(), 48);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_source_zero_pads_beyond_file_end() {
    let clock = SlotClock::hourly();
    let trace = TimeSeries::from_values(clock, vec![500.0; 24]); // one day only
    let dir = std::env::temp_dir().join(format!("gm-trace-pad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("short.csv");
    std::fs::write(&path, trace_to_csv(&trace)).expect("write");

    let mut cfg = ExperimentConfig::small_demo(3);
    cfg.slots = 72; // three days, trace covers one
    cfg.energy.source =
        SourceKind::TraceCsv { label: "short".into(), path: path.to_string_lossy().into_owned() };
    let r = run_experiment(&cfg);
    // Day 1 produced 12 kWh; days 2–3 produced nothing.
    assert!((r.green_produced_kwh - 12.0).abs() < 1e-6, "{}", r.green_produced_kwh);
    assert!(r.green_series_wh[30] == 0.0 && r.green_series_wh[60] == 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_trace_substitution_roundtrips_through_generation() {
    // The synthetic population, exported and re-imported, produces an
    // identical workload object — the substitution path is lossless.
    let spec = WorkloadSpec::small_week(500);
    let original = Workload::generate(spec.clone(), 17);
    let csv = batch_jobs_to_csv(original.batch_jobs());
    let substituted =
        Workload::generate(spec, 17).with_batch_jobs(batch_jobs_from_csv(&csv).expect("parse"));
    assert_eq!(original.batch_jobs(), substituted.batch_jobs());
    assert_eq!(original.total_batch_bytes(), substituted.total_batch_bytes());
}

#[test]
fn config_with_trace_source_roundtrips_json() {
    let mut cfg = ExperimentConfig::small_demo(1);
    cfg.energy.source =
        SourceKind::TraceCsv { label: "x".into(), path: "/tmp/nonexistent.csv".into() };
    let json = serde_json::to_string(&cfg).expect("serialise");
    let back: ExperimentConfig = serde_json::from_str(&json).expect("parse");
    match back.energy.source {
        SourceKind::TraceCsv { label, path } => {
            assert_eq!(label, "x");
            assert_eq!(path, "/tmp/nonexistent.csv");
        }
        other => panic!("wrong variant: {other:?}"),
    }
}
