//! Cross-crate check of the gear layout's availability guarantee: with only
//! gear 0 powered, every object stays readable and no forced spin-up ever
//! happens — and the guarantee demonstrably fails for the random layout.

use gm_sim::time::SimTime;
use gm_storage::{Cluster, ClusterSpec, IoRequest, LayoutKind, ObjectId};
use proptest::prelude::*;

fn gated_cluster(layout: LayoutKind, seed: u64) -> Cluster {
    let mut spec = ClusterSpec::small();
    spec.layout = layout;
    spec.layout_seed = seed;
    let mut c = Cluster::new(spec);
    c.set_active_gears(1, SimTime::ZERO);
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn gear_layout_never_forces_spinups(seed in 0u64..10_000, objects in proptest::collection::vec(0u64..1_000, 1..64)) {
        let mut c = gated_cluster(LayoutKind::Gear, seed);
        for (i, obj) in objects.iter().enumerate() {
            let req = IoRequest::read(SimTime::from_secs(i as u64), ObjectId(*obj), 64 << 10);
            let served = c.serve_request(&req);
            prop_assert!(served.latency.as_secs_f64() < 5.0,
                "no spin-up stall expected, got {:?}", served.latency);
        }
        prop_assert_eq!(c.total_forced_spinups(), 0);
    }

    #[test]
    fn every_object_has_a_gear0_replica(seed in 0u64..10_000) {
        let mut spec = ClusterSpec::small();
        spec.layout = LayoutKind::Gear;
        spec.layout_seed = seed;
        let c = Cluster::new(spec);
        let topo = *c.topology();
        for obj in c.directory() {
            prop_assert!(obj.replicas.iter().any(|&d| topo.gear_of_disk(d) == 0),
                "object {:?} lacks a gear-0 replica: {:?}", obj.id, obj.replicas);
        }
    }
}

#[test]
fn random_layout_violates_the_guarantee() {
    let mut c = gated_cluster(LayoutKind::Random, 3);
    for i in 0..500 {
        let req = IoRequest::read(SimTime::from_secs(i), ObjectId(i % 1_000), 64 << 10);
        c.serve_request(&req);
    }
    assert!(c.total_forced_spinups() > 0, "random placement must orphan some objects from gear 0");
}

#[test]
fn chained_layout_also_orphans_under_gating() {
    let mut c = gated_cluster(LayoutKind::Chained, 3);
    for i in 0..500 {
        let req = IoRequest::read(SimTime::from_secs(i), ObjectId(i % 1_000), 64 << 10);
        c.serve_request(&req);
    }
    assert!(c.total_forced_spinups() > 0, "chained declustering has no gear structure");
}
