//! Snapshot/branch/resume contract tests.
//!
//! A checkpoint taken mid-run and restored under the same config must be
//! *invisible*: the resumed run emits exactly the trace bytes the cold run
//! would have emitted from that slot onward, and finishes with an
//! identical report. Restoring under a variant config (different policy,
//! battery) branches the checkpoint into a what-if continuation that must
//! still satisfy every conservation invariant. These tests pin both
//! halves of the contract, plus the rejection rules for snapshots that
//! cannot be resumed safely.

use std::io::Write;
use std::sync::{Arc, Mutex};

use greenmatch::config::ExperimentConfig;
use greenmatch::observe::{CsvSeriesObserver, JsonlTraceObserver};
use greenmatch::policy::PolicyKind;
use greenmatch::report::RunReport;
use greenmatch::simulation::Simulation;
use greenmatch::Snapshot;

/// `io::Write` sink whose bytes remain reachable after the observer (and
/// the simulation that owns it) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

const ALL_POLICIES: [PolicyKind; 8] = [
    PolicyKind::AllOn,
    PolicyKind::PowerProportional,
    PolicyKind::Edf,
    PolicyKind::GreedyGreen,
    PolicyKind::GreenMatch { delay_fraction: 1.0 },
    PolicyKind::GreenMatch { delay_fraction: 0.3 },
    PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 12 },
    PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
];

/// Run `cfg` cold to completion with a JSONL trace attached; return the
/// trace bytes and the final report.
fn cold_run(cfg: &ExperimentConfig) -> (Vec<u8>, RunReport) {
    let buf = SharedBuf::default();
    let report = Simulation::builder(cfg)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();
    (buf.contents(), report)
}

/// Run `cfg` up to (not including) `slot` and return the snapshot taken
/// there, after pushing it through a JSON round-trip so the serialized
/// form — not just the in-memory struct — is what gets restored.
fn snapshot_at(cfg: &ExperimentConfig, slot: usize) -> Snapshot {
    let mut sim = Simulation::builder(cfg).build().expect("config materialises");
    for _ in 0..slot {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = sim.snapshot();
    assert_eq!(snap.cursor, slot);
    Snapshot::from_json(&snap.to_json()).expect("snapshot survives a JSON round-trip")
}

/// The trailing bytes of a JSONL trace starting at line `from`.
fn trace_suffix(trace: &[u8], from: usize) -> Vec<u8> {
    let text = std::str::from_utf8(trace).expect("trace is UTF-8");
    let mut out = String::new();
    for line in text.lines().skip(from) {
        out.push_str(line);
        out.push('\n');
    }
    out.into_bytes()
}

#[test]
fn resumed_trace_is_byte_identical_for_every_policy() {
    for policy in ALL_POLICIES {
        let cfg = ExperimentConfig::small_demo(7).with_slots(48).with_policy(policy);
        let (cold_trace, cold_report) = cold_run(&cfg);
        let snap = snapshot_at(&cfg, 20);

        let buf = SharedBuf::default();
        let resumed_report = Simulation::builder(&cfg)
            .resume_from(&snap)
            .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
            .build()
            .expect("snapshot restores under its own config")
            .run_to_end();

        assert_eq!(
            buf.contents(),
            trace_suffix(&cold_trace, 20),
            "{policy:?}: resumed trace diverged from the cold run's suffix"
        );
        assert_eq!(
            serde_json::to_string(&resumed_report).unwrap(),
            serde_json::to_string(&cold_report).unwrap(),
            "{policy:?}: resumed report diverged from the cold run's"
        );
    }
}

#[test]
fn prefix_plus_resumed_trace_concatenates_to_the_cold_trace() {
    // The golden-trace config: interrupting it at an arbitrary slot and
    // appending the resumed output must reproduce the cold file byte for
    // byte — the property `run_once --checkpoint-every/--resume` relies on.
    let cfg = ExperimentConfig::small_demo(42);
    let (cold_trace, _) = cold_run(&cfg);

    let prefix = SharedBuf::default();
    let mut sim = Simulation::builder(&cfg)
        .observer(Box::new(JsonlTraceObserver::new(prefix.clone())))
        .build()
        .expect("config materialises");
    for _ in 0..13 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = Snapshot::from_json(&sim.snapshot().to_json()).expect("round-trip");
    drop(sim);

    let tail = SharedBuf::default();
    Simulation::builder(&cfg)
        .resume_from(&snap)
        .observer(Box::new(JsonlTraceObserver::new(tail.clone())))
        .build()
        .expect("snapshot restores")
        .run_to_end();

    let mut stitched = prefix.contents();
    stitched.extend_from_slice(&tail.contents());
    assert_eq!(stitched, cold_trace, "prefix + resumed trace must equal the cold trace");
}

#[test]
fn csv_resume_appends_without_a_second_header() {
    let cfg = ExperimentConfig::small_demo(42);

    let cold = SharedBuf::default();
    Simulation::builder(&cfg)
        .observer(Box::new(CsvSeriesObserver::new(cold.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();

    let prefix = SharedBuf::default();
    let mut sim = Simulation::builder(&cfg)
        .observer(Box::new(CsvSeriesObserver::new(prefix.clone())))
        .build()
        .expect("config materialises");
    for _ in 0..13 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = sim.snapshot();
    drop(sim);

    let tail = SharedBuf::default();
    Simulation::builder(&cfg)
        .resume_from(&snap)
        .observer(Box::new(CsvSeriesObserver::new(tail.clone())))
        .build()
        .expect("snapshot restores")
        .run_to_end();

    let mut stitched = prefix.contents();
    stitched.extend_from_slice(&tail.contents());
    assert_eq!(
        stitched,
        cold.contents(),
        "prefix + resumed CSV must equal the cold CSV (exactly one header row)"
    );
}

#[test]
fn auditor_is_clean_across_a_restore() {
    let cfg = ExperimentConfig::small_demo(11)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let snap = snapshot_at(&cfg, 20);

    let sim = Simulation::builder(&cfg).resume_from(&snap).build().expect("snapshot restores");
    let (sim, report) = sim.run_audited();
    assert!(report.is_clean(), "resumed run violated conservation: {report:?}");
    assert_eq!(report.slots_audited, 48 - 20, "auditor sees only the resumed slots");
    assert!(sim.is_done());
}

#[test]
fn multi_site_resume_is_byte_identical_and_clean() {
    let base = ExperimentConfig::small_demo(7)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let mut sites = base.site_configs();
    let mut east = sites[0].clone();
    east.name = "east".into();
    east.utc_offset_hours = 8;
    sites.push(east);
    let cfg = base.with_sites(sites).with_wan_cost(200);

    let (cold_trace, cold_report) = cold_run(&cfg);
    let snap = snapshot_at(&cfg, 20);

    let buf = SharedBuf::default();
    let sim = Simulation::builder(&cfg)
        .resume_from(&snap)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("snapshot restores");
    let (sim, audit) = sim.run_audited();
    let resumed_report = sim.into_report();

    assert!(audit.is_clean(), "multi-site resumed run violated conservation: {audit:?}");
    assert_eq!(
        buf.contents(),
        trace_suffix(&cold_trace, 20),
        "multi-site resumed trace diverged from the cold run's suffix"
    );
    assert_eq!(
        serde_json::to_string(&resumed_report).unwrap(),
        serde_json::to_string(&cold_report).unwrap(),
        "multi-site resumed report diverged from the cold run's"
    );
}

#[test]
fn branched_variants_complete_and_conserve() {
    // Take one checkpoint under GreenMatch, then branch it into what-if
    // continuations: a different policy, a bigger battery, no battery.
    // Each branch must run to completion with a clean audit.
    let base = ExperimentConfig::small_demo(11)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let snap = snapshot_at(&base, 20);

    let mut doubled = base.energy.battery.expect("small_demo has a battery");
    doubled.capacity_wh *= 2.0;
    let variants: Vec<(&str, ExperimentConfig)> = vec![
        ("policy→AllOn", base.clone().with_policy(PolicyKind::AllOn)),
        ("policy→Edf", base.clone().with_policy(PolicyKind::Edf)),
        ("battery→double", base.clone().with_battery(doubled)),
        ("battery→none", base.clone().with_battery(None)),
    ];

    for (name, cfg) in variants {
        let sim = Simulation::builder(&cfg)
            .resume_from(&snap)
            .build()
            .unwrap_or_else(|e| panic!("{name}: branch must restore: {e:?}"));
        let (sim, report) = sim.run_audited();
        assert!(report.is_clean(), "{name}: branched run violated conservation: {report:?}");
        assert_eq!(report.slots_audited, 48 - 20);
        let r = sim.into_report();
        assert_eq!(r.slots, 48, "{name}: branch must account for the full horizon");
    }
}

#[test]
fn branching_the_policy_actually_diverges() {
    // Sanity check that branches are real continuations, not clones: the
    // same checkpoint resumed under AllOn must emit a different trace
    // than resumed under GreenMatch.
    let base = ExperimentConfig::small_demo(7)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let snap = snapshot_at(&base, 20);

    let mut tails = Vec::new();
    for cfg in [base.clone(), base.clone().with_policy(PolicyKind::AllOn)] {
        let buf = SharedBuf::default();
        Simulation::builder(&cfg)
            .resume_from(&snap)
            .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
            .build()
            .expect("snapshot restores")
            .run_to_end();
        tails.push(buf.contents());
    }
    assert_ne!(tails[0], tails[1], "policy branch produced an identical continuation");
}

#[test]
fn resume_rejects_a_different_world() {
    let cfg = ExperimentConfig::small_demo(7).with_slots(48);
    let snap = snapshot_at(&cfg, 10);

    // Seed and horizon changes alter the world keys: the checkpointed
    // state would replay a workload/trace it never saw. Both must refuse.
    for (name, bad) in [
        ("different seed", cfg.clone().with_seed(8)),
        ("different horizon", cfg.clone().with_slots(96)),
    ] {
        let err = Simulation::builder(&bad)
            .resume_from(&snap)
            .build()
            .err()
            .unwrap_or_else(|| panic!("{name}: resume must be rejected"));
        let msg = format!("{err:?}");
        assert!(msg.contains("different world"), "{name}: unexpected error {msg}");
    }
}

#[test]
fn resume_rejects_unknown_versions_and_corrupt_json() {
    let cfg = ExperimentConfig::small_demo(7).with_slots(48);
    let mut snap = snapshot_at(&cfg, 10);
    snap.version = greenmatch::SNAPSHOT_VERSION + 1;

    let err = Snapshot::from_json(&snap.to_json()).expect_err("future version must be rejected");
    assert!(err.contains("version"), "unexpected error {err}");

    let err = Simulation::builder(&cfg)
        .resume_from(&snap)
        .build()
        .err()
        .expect("builder must also reject a future version");
    assert!(format!("{err:?}").contains("version"));

    let err = Snapshot::from_json("{not json").expect_err("corrupt snapshot must be rejected");
    assert!(err.contains("malformed"), "unexpected error {err}");
}

#[test]
fn snapshot_save_load_round_trips_on_disk() {
    let cfg = ExperimentConfig::small_demo(7).with_slots(48);
    let snap = snapshot_at(&cfg, 10);

    let dir = std::env::temp_dir().join(format!("gm-snapshot-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("checkpoint.json");
    snap.save(&path).expect("snapshot saves");
    let loaded = Snapshot::load(&path).expect("snapshot loads");
    assert_eq!(loaded.to_json(), snap.to_json(), "disk round-trip must be lossless");
    let _ = std::fs::remove_dir_all(&dir);
}
