//! Admission control and service-mode (event feed) end-to-end pins.
//!
//! Three contracts live here:
//! * feed == batch — a feed-driven run is byte-identical to the batch
//!   cursor walk of the same scenario, whole-report JSON compared;
//! * α-monotonicity — tightening the gate's confidence level never turns
//!   away less work (the lower band shrinks pointwise in α);
//! * snapshot/resume — a gated run checkpointed mid-week resumes
//!   byte-identically, held jobs and gate counters included.

use greenmatch::config::{AdmissionConfig, ExperimentConfig, ForecastKind};
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;

fn base_cfg(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_demo(seed);
    cfg.policy = PolicyKind::GreenMatch { delay_fraction: 0.5 };
    cfg
}

fn gated_cfg(seed: u64, alpha: f64) -> ExperimentConfig {
    base_cfg(seed)
        .with_forecast(ForecastKind::Noisy { cv: 0.3 })
        .with_admission(AdmissionConfig { alpha, defer_slots: 4 })
}

#[test]
fn feed_replay_is_byte_identical_to_batch() {
    let batch = run_experiment(&base_cfg(42));
    let fed = run_experiment(&base_cfg(42).with_feed_arrivals(true));
    assert_eq!(
        serde_json::to_string(&batch).unwrap(),
        serde_json::to_string(&fed).unwrap(),
        "feed-driven run must replay the batch run byte for byte"
    );
}

#[test]
fn feed_replay_is_byte_identical_under_admission_too() {
    let cfg = gated_cfg(7, 0.9);
    let batch = run_experiment(&cfg);
    let fed = run_experiment(&cfg.clone().with_feed_arrivals(true));
    assert_eq!(serde_json::to_string(&batch).unwrap(), serde_json::to_string(&fed).unwrap(),);
}

#[test]
fn external_feed_drives_the_run_identically() {
    // Hand-drive a feed from the workload instead of using the built-in
    // replay: the builder path external drivers (gm-serve) use.
    let cfg = base_cfg(11);
    let batch = run_experiment(&cfg);

    let (mut tx, feed) = gm_workload::EventFeed::new();
    let sim = Simulation::builder(&cfg).feed(feed).build().expect("config materialises");
    // Pre-load every slot; contiguity is asserted by the sender.
    let workload = greenmatch::world::World::try_materialize(&cfg).expect("world").workload;
    for slot in 0..cfg.slots {
        tx.send_slot(slot, workload.batch_arrivals_in_slot(cfg.clock, slot));
    }
    drop(tx);
    let fed = sim.run_to_end();
    assert_eq!(serde_json::to_string(&batch).unwrap(), serde_json::to_string(&fed).unwrap(),);
}

#[test]
fn admission_defaults_off_and_reports_nothing() {
    let report = run_experiment(&base_cfg(3));
    assert!(report.admission.is_none(), "no gate, no admission section");
}

#[test]
fn gate_accounts_for_every_arrival() {
    let cfg = gated_cfg(5, 0.9);
    let ungated = run_experiment(&base_cfg(5).with_forecast(ForecastKind::Noisy { cv: 0.3 }));
    let report = run_experiment(&cfg);
    let adm = report.admission.expect("gate ran");
    // Conservation: every job the ungated run submitted was either
    // accepted, rejected, or still held when the horizon ended.
    assert_eq!(
        adm.accepted + adm.rejected + adm.pending_at_end as u64,
        ungated.batch.jobs_submitted as u64,
        "gate decisions must partition the arrival population"
    );
    assert_eq!(report.batch.jobs_submitted as u64, adm.accepted);
}

#[test]
fn tightening_alpha_rejects_monotonically_more() {
    let mut prev_turned_away = 0u64;
    let mut prev_accepted = u64::MAX;
    for alpha in [0.5, 0.8, 0.9, 0.99] {
        let report = run_experiment(&gated_cfg(21, alpha));
        let adm = report.admission.expect("gate ran");
        let turned_away = adm.rejected + adm.pending_at_end as u64;
        assert!(
            turned_away >= prev_turned_away,
            "α={alpha}: gate loosened ({turned_away} < {prev_turned_away})"
        );
        assert!(
            adm.accepted <= prev_accepted,
            "α={alpha}: acceptance grew ({} > {prev_accepted})",
            adm.accepted
        );
        prev_turned_away = turned_away;
        prev_accepted = adm.accepted;
    }
}

#[test]
fn gated_snapshot_resumes_byte_identically() {
    let cfg = gated_cfg(13, 0.9);
    let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
    for _ in 0..60 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = sim.snapshot();
    // The snapshot must survive its own JSON round trip (v3 fields
    // included) and restore into an identical continuation.
    let snap = greenmatch::Snapshot::from_json(&snap.to_json()).expect("round trip");
    drop(sim);
    let resumed = Simulation::builder(&cfg)
        .resume_from(&snap)
        .build()
        .expect("snapshot restores")
        .run_to_end();
    let cold = run_experiment(&cfg);
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&cold).unwrap(),
        "gated resume must equal the uninterrupted run"
    );
}

#[test]
fn feed_mode_snapshot_resumes_byte_identically() {
    let cfg = gated_cfg(17, 0.8).with_feed_arrivals(true);
    let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
    for _ in 0..48 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = sim.snapshot();
    drop(sim);
    let resumed = Simulation::builder(&cfg)
        .resume_from(&snap)
        .build()
        .expect("snapshot restores")
        .run_to_end();
    let cold = run_experiment(&cfg);
    assert_eq!(serde_json::to_string(&resumed).unwrap(), serde_json::to_string(&cold).unwrap(),);
}

#[test]
fn oracle_forecast_gate_is_open_under_ample_supply() {
    // Degenerate bands (oracle) make the gate a pure capacity check; with
    // the small demo's PV sized near the load, most work passes.
    let report =
        run_experiment(&base_cfg(9).with_admission(AdmissionConfig { alpha: 0.9, defer_slots: 4 }));
    let adm = report.admission.expect("gate ran");
    assert!(adm.accepted > 0, "an oracle-banded gate must accept work");
}
