//! Property-based conservation checks over randomised configurations.
//!
//! Whatever the policy, battery, source or seed, the energy bookkeeping
//! identities must hold and every reported ratio must stay in range. Runs
//! are kept tiny (24 slots, scaled workload) so proptest can afford many
//! cases.

use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use gm_energy::wind::WindProfile;
use gm_workload::trace::WorkloadSpec;
use greenmatch::config::{ExperimentConfig, ForecastKind, SourceKind};
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::AllOn),
        Just(PolicyKind::PowerProportional),
        Just(PolicyKind::Edf),
        Just(PolicyKind::GreedyGreen),
        (0.0f64..=1.0).prop_map(|f| PolicyKind::GreenMatch { delay_fraction: f }),
    ]
}

fn source_strategy() -> impl Strategy<Value = SourceKind> {
    prop_oneof![
        Just(SourceKind::None),
        (0.0f64..60.0)
            .prop_map(|a| SourceKind::Solar { area_m2: a, profile: SolarProfile::SunnySummer }),
        (0.0f64..60.0)
            .prop_map(|a| SourceKind::Solar { area_m2: a, profile: SolarProfile::CloudySummer }),
        (1_000.0f64..20_000.0)
            .prop_map(|w| SourceKind::Wind { rated_w: w, profile: WindProfile::GustyContinental }),
    ]
}

fn tiny_cfg(
    seed: u64,
    policy: PolicyKind,
    source: SourceKind,
    battery_wh: f64,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_demo(seed);
    cfg.workload = WorkloadSpec::small_week(cfg.cluster.objects).scaled(0.3);
    cfg.slots = 24;
    cfg.policy = policy;
    cfg.energy.source = source;
    cfg.energy.battery = (battery_wh > 0.0).then(|| BatterySpec::lithium_ion(battery_wh));
    cfg.energy.forecast = ForecastKind::Oracle;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn energy_identities_hold_for_random_configs(
        seed in 0u64..1_000,
        policy in policy_strategy(),
        source in source_strategy(),
        battery_wh in prop_oneof![Just(0.0), 100.0f64..20_000.0],
    ) {
        let r = run_experiment(&tiny_cfg(seed, policy, source.clone(), battery_wh));

        // Supply identity: load is fully attributed.
        let served = r.green_direct_kwh + r.battery_out_kwh + r.brown_kwh;
        prop_assert!((served - r.load_kwh).abs() < 1e-6,
            "supply identity: {} vs load {}", served, r.load_kwh);

        // Production identity: green direct + battery input + curtailed =
        // produced. Battery input = out + losses + what's still stored, so
        // produced ≥ direct + out + eff-loss + curtailed (within ε).
        let accounted = r.green_direct_kwh + r.battery_out_kwh + r.battery_eff_loss_kwh
            + r.curtailed_kwh;
        prop_assert!(r.green_produced_kwh + 1e-6 >= accounted,
            "production overdrawn: produced {} < accounted {}", r.green_produced_kwh, accounted);

        // Ratios and counters stay in range.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.green_utilization));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.green_coverage));
        prop_assert!(r.brown_kwh >= -1e-9);
        prop_assert!(r.curtailed_kwh >= -1e-9);
        prop_assert!(r.battery_eff_loss_kwh >= -1e-9);
        prop_assert!(r.load_kwh > 0.0, "a cluster always burns something");
        prop_assert!(r.forced_spinups <= r.spinups);

        // Gear levels stay within the physical range.
        prop_assert!(r.gears_series.iter().all(|&g| (1..=3).contains(&g)));

        // No battery configured ⇒ no battery flows.
        if battery_wh == 0.0 {
            prop_assert_eq!(r.battery_out_kwh, 0.0);
            prop_assert_eq!(r.battery_eff_loss_kwh, 0.0);
        }
        // No source ⇒ everything brown.
        if matches!(source, SourceKind::None) {
            prop_assert!((r.brown_kwh - r.load_kwh).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_accounting_is_consistent(
        seed in 0u64..500,
        policy in policy_strategy(),
    ) {
        let r = run_experiment(&tiny_cfg(seed, policy,
            SourceKind::Solar { area_m2: 20.0, profile: SolarProfile::SunnySummer }, 5_000.0));
        prop_assert!(r.batch.jobs_completed <= r.batch.jobs_submitted);
        prop_assert!(r.batch.deadline_misses <= r.batch.jobs_completed);
        prop_assert!(r.batch.bytes_completed <= r.batch.bytes_submitted);
        prop_assert!((0.0..=1.0).contains(&r.batch.miss_rate()));
    }
}
