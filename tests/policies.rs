//! Cross-crate integration: policy behaviour orderings the reconstruction's
//! headline claims rest on. Every run here uses the small cluster and a
//! shortened horizon so the suite stays fast in debug builds.

use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use greenmatch::config::{ExperimentConfig, SourceKind};
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;
use greenmatch::report::RunReport;

fn cfg(policy: PolicyKind, battery_wh: f64, area_m2: f64, slots: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_demo(1234);
    cfg.policy = policy;
    cfg.slots = slots;
    cfg.energy.source = SourceKind::Solar { area_m2, profile: SolarProfile::SunnySummer };
    cfg.energy.battery = (battery_wh > 0.0).then(|| BatterySpec::lithium_ion(battery_wh));
    cfg
}

fn run(policy: PolicyKind, battery_wh: f64, area_m2: f64) -> RunReport {
    run_experiment(&cfg(policy, battery_wh, area_m2, 72))
}

#[test]
fn greenmatch_dominates_all_on_on_brown_energy() {
    let gm = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 0.0, 20.0);
    let allon = run(PolicyKind::AllOn, 0.0, 20.0);
    assert!(
        gm.brown_kwh < allon.brown_kwh * 0.9,
        "greenmatch {:.1} kWh should clearly beat all-on {:.1} kWh",
        gm.brown_kwh,
        allon.brown_kwh
    );
}

#[test]
fn greenmatch_beats_greedy_green_with_lookahead() {
    let gm = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 0.0, 20.0);
    let greedy = run(PolicyKind::GreedyGreen, 0.0, 20.0);
    assert!(
        gm.brown_kwh <= greedy.brown_kwh * 1.05,
        "greenmatch {:.1} kWh should be no worse than greedy {:.1} kWh",
        gm.brown_kwh,
        greedy.brown_kwh
    );
}

#[test]
fn battery_only_improves_over_no_battery() {
    let with = run(PolicyKind::AllOn, 10_000.0, 20.0);
    let without = run(PolicyKind::AllOn, 0.0, 20.0);
    assert!(with.brown_kwh <= without.brown_kwh + 1e-9);
    assert!(with.battery_out_kwh > 0.0, "battery actually cycled");
    assert!(with.curtailed_kwh <= without.curtailed_kwh + 1e-9, "storing surplus cuts curtailment");
}

#[test]
fn opportunistic_scheduling_reduces_required_battery() {
    // The companion-claim shape: at the battery size where GreenMatch has
    // already flattened, ESD-only still gains from more capacity.
    let gm_small = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 4_000.0, 30.0);
    let gm_large = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 20_000.0, 30.0);
    let esd_small = run(PolicyKind::AllOn, 4_000.0, 30.0);
    let esd_large = run(PolicyKind::AllOn, 20_000.0, 30.0);
    let gm_gain = gm_small.brown_kwh - gm_large.brown_kwh;
    let esd_gain = esd_small.brown_kwh - esd_large.brown_kwh;
    assert!(
        esd_gain > gm_gain,
        "ESD-only should depend more on battery size: esd gain {esd_gain:.2} vs gm gain {gm_gain:.2}"
    );
}

#[test]
fn every_policy_meets_most_deadlines() {
    for policy in [
        PolicyKind::AllOn,
        PolicyKind::PowerProportional,
        PolicyKind::Edf,
        PolicyKind::GreedyGreen,
        PolicyKind::GreenMatch { delay_fraction: 1.0 },
        PolicyKind::GreenMatch { delay_fraction: 0.3 },
    ] {
        let r = run(policy, 10_000.0, 20.0);
        assert!(
            r.batch.miss_rate() < 0.25,
            "{}: miss rate {:.1}%",
            r.policy,
            r.batch.miss_rate() * 100.0
        );
        assert!(r.latency.p99_s < 5.0, "{}: p99 {:.2}s", r.policy, r.latency.p99_s);
    }
}

#[test]
fn delay_fraction_interpolates_between_extremes() {
    let f0 = run(PolicyKind::GreenMatch { delay_fraction: 0.0 }, 0.0, 20.0);
    let f50 = run(PolicyKind::GreenMatch { delay_fraction: 0.5 }, 0.0, 20.0);
    let f100 = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 0.0, 20.0);
    // More deferral ⇒ no more brown energy (monotone within tolerance).
    assert!(f50.brown_kwh <= f0.brown_kwh * 1.05, "{} vs {}", f50.brown_kwh, f0.brown_kwh);
    assert!(f100.brown_kwh <= f50.brown_kwh * 1.05, "{} vs {}", f100.brown_kwh, f50.brown_kwh);
}

#[test]
fn gear_scaling_actually_moves_power() {
    // Double the batch volume: at the demo default the overnight backlog
    // (~1.3 TB expected) only exceeds one gear's hourly batch capacity
    // (~1.6 TB) on lucky workload draws, making gear-up a coin flip. At 2×
    // the morning green window needs a second gear on every seed tried.
    let mut c = cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 0.0, 20.0, 72);
    c.workload.batch.mean_bytes *= 2.0;
    let gm = run_experiment(&c);
    let min_gear = *gm.gears_series.iter().min().expect("nonempty");
    let max_gear = *gm.gears_series.iter().max().expect("nonempty");
    assert_eq!(min_gear, 1, "nights should drop to one gear");
    assert!(max_gear >= 2, "green windows should raise gears");
    assert!(gm.spinups > 0, "gear cycling spins disks");
}

#[test]
fn carbon_aware_never_emits_more_than_plain() {
    let plain = run(PolicyKind::GreenMatch { delay_fraction: 1.0 }, 0.0, 20.0);
    let carbon = run(PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 }, 0.0, 20.0);
    // Same load must be served either way.
    assert!((plain.load_kwh - carbon.load_kwh).abs() / plain.load_kwh < 0.05);
    // Carbon-aware may not reduce kWh, but must not *increase* emissions
    // beyond noise.
    assert!(
        carbon.carbon_kg <= plain.carbon_kg * 1.05,
        "carbon-aware {:.1} kg vs plain {:.1} kg",
        carbon.carbon_kg,
        plain.carbon_kg
    );
    assert!(carbon.batch.miss_rate() < 0.25);
}

#[test]
fn economics_identities_hold() {
    let r = run(PolicyKind::AllOn, 10_000.0, 20.0);
    // Opex = grid + wear, each non-negative.
    assert!(r.cost_dollars >= 0.0 && r.battery_wear_dollars >= 0.0);
    assert!((r.opex_dollars() - (r.cost_dollars + r.battery_wear_dollars)).abs() < 1e-9);
    // Cycles are consistent with the energy delivered: EFC × usable ≈
    // battery_out (within rounding).
    let usable_kwh = 10.0 * 0.8;
    assert!(
        (r.battery_cycles * usable_kwh - r.battery_out_kwh).abs() < 0.01,
        "cycles {} × usable {} vs out {}",
        r.battery_cycles,
        usable_kwh,
        r.battery_out_kwh
    );
    // No battery ⇒ no wear.
    let dry = run(PolicyKind::AllOn, 0.0, 20.0);
    assert_eq!(dry.battery_wear_dollars, 0.0);
    assert_eq!(dry.battery_cycles, 0.0);
}

#[test]
fn zero_solar_means_all_brown_regardless_of_policy() {
    for policy in [PolicyKind::AllOn, PolicyKind::GreenMatch { delay_fraction: 1.0 }] {
        let r = run(policy, 10_000.0, 0.0);
        assert!((r.brown_kwh - r.load_kwh).abs() < 1e-6, "{}", r.policy);
        assert_eq!(r.green_produced_kwh, 0.0);
    }
}
