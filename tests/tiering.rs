//! Temperature-tiering contract tests: classifier-driven migration jobs
//! through the full slot pipeline, byte conservation under the auditor,
//! EC behaviour under failure injection, and snapshot compatibility
//! (tiering-off snapshots stay v1-shaped; v1 snapshots still restore).

use std::io::Write;
use std::sync::{Arc, Mutex};

use greenmatch::config::{ExperimentConfig, TieringConfig};
use greenmatch::observe::JsonlTraceObserver;
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;
use greenmatch::Snapshot;

/// `io::Write` sink whose bytes remain reachable after the observer is
/// dropped (same shape as the snapshot tests' helper).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tiered_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig::small_demo(seed)
        .with_slots(72)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 })
        .with_tiering(TieringConfig::default())
}

#[test]
fn tiered_run_is_audit_clean_and_reduces_capacity() {
    let cfg = tiered_cfg(11);
    let baseline = greenmatch::harness::run_experiment(&cfg.clone().with_tiering(None));
    let (sim, audit) =
        Simulation::builder(&cfg).build().expect("config materialises").run_audited();
    assert!(audit.is_clean(), "tiered run violated conservation: {}", audit.summary());
    let r = sim.into_report();

    assert!(r.migrations_completed > 0, "cold objects must demote within 72 h");
    assert!(r.ec_objects > 0, "demotions leave objects on erasure coding");
    assert!(r.migrated_bytes > 0);
    assert!((0.0..=1.0).contains(&r.migration_green_share));
    assert!(
        r.capacity_in_use_bytes < baseline.capacity_in_use_bytes,
        "EC tiering must cut raw capacity: {} vs baseline {}",
        r.capacity_in_use_bytes,
        baseline.capacity_in_use_bytes
    );
    // Demand served is unchanged: same interactive trace, same batch pool.
    assert_eq!(r.latency.count, baseline.latency.count);
    assert_eq!(r.batch.jobs_submitted, baseline.batch.jobs_submitted);
}

#[test]
fn tiering_off_reports_no_tier_activity() {
    let r = greenmatch::harness::run_experiment(&ExperimentConfig::small_demo(11).with_slots(24));
    assert_eq!(r.migrations_completed, 0);
    assert_eq!(r.migrated_bytes, 0);
    assert_eq!(r.ec_objects, 0);
    assert_eq!(r.migration_green_share, 0.0);
    // Capacity is the static replicated footprint.
    let cfg = ExperimentConfig::small_demo(11);
    let expected =
        cfg.cluster.objects as u64 * cfg.cluster.replication as u64 * cfg.cluster.object_size_bytes;
    assert_eq!(r.capacity_in_use_bytes, expected);
}

#[test]
fn tiered_run_with_failures_is_audit_clean() {
    // Failure injection on top of tiering: repairs and migrations share
    // the job pool, EC objects lose shards and rebuild, and every byte
    // identity must still hold exactly.
    let mut cfg = tiered_cfg(7).with_policy(PolicyKind::PowerProportional);
    cfg.failures =
        Some(gm_storage::FailureSpec { afr: 60.0, standby_factor: 0.5, spinup_wear_hours: 10.0 });
    let (sim, audit) =
        Simulation::builder(&cfg).build().expect("config materialises").run_audited();
    assert!(audit.is_clean(), "tiered failure run violated conservation: {}", audit.summary());
    let r = sim.into_report();
    assert!(r.failures > 0, "a 60% AFR run must fail disks");
    assert!(r.migrations_completed > 0, "failures must not starve migrations");
}

#[test]
fn tiered_snapshot_resume_is_byte_identical() {
    let cfg = tiered_cfg(7);
    let cold = SharedBuf::default();
    let cold_report = Simulation::builder(&cfg)
        .observer(Box::new(JsonlTraceObserver::new(cold.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();

    // Snapshot mid-run — deliberately deep enough that migrations are in
    // flight — and resume through a JSON round-trip.
    let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
    for _ in 0..30 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = Snapshot::from_json(&sim.snapshot().to_json()).expect("round-trip");
    drop(sim);

    let tail = SharedBuf::default();
    let resumed_report = Simulation::builder(&cfg)
        .resume_from(&snap)
        .observer(Box::new(JsonlTraceObserver::new(tail.clone())))
        .build()
        .expect("tiered snapshot restores")
        .run_to_end();

    let cold_bytes = cold.contents();
    let text = std::str::from_utf8(&cold_bytes).expect("trace is UTF-8");
    let suffix: String = text.lines().skip(30).flat_map(|l| [l, "\n"]).collect();
    assert_eq!(
        tail.contents(),
        suffix.into_bytes(),
        "tiered resumed trace diverged from the cold run's suffix"
    );
    assert_eq!(
        serde_json::to_string(&resumed_report).unwrap(),
        serde_json::to_string(&cold_report).unwrap(),
        "tiered resumed report diverged from the cold run's"
    );
}

#[test]
fn tiering_off_snapshot_stays_v1_shaped_and_v1_restores() {
    // A tiering-off run must write a snapshot with no migration fields at
    // all (every new field is skip-at-default), so the only difference
    // from a v1 file is the version number — and v1 files themselves must
    // still parse and resume.
    let cfg = ExperimentConfig::small_demo(42);
    let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
    for _ in 0..13 {
        sim.step().expect("prefix shorter than the run");
    }
    let json = sim.snapshot().to_json();
    drop(sim);
    assert!(!json.contains("migration"), "tiering-off snapshot must stay v1-shaped");
    assert!(json.contains("\"version\":3"));

    // Rewind the version field: this is byte-for-byte what a pre-tiering
    // build would have written.
    let v1_json = json.replace("\"version\":3", "\"version\":1");
    let snap = Snapshot::from_json(&v1_json).expect("v1 snapshots must still parse");
    assert_eq!(snap.version, 1);

    let report = Simulation::builder(&cfg)
        .resume_from(&snap)
        .build()
        .expect("v1 snapshot restores")
        .run_to_end();
    let cold = greenmatch::harness::run_experiment(&cfg);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&cold).unwrap(),
        "v1-resumed report diverged from the cold run's"
    );
}

#[test]
fn tiered_branch_from_untiered_checkpoint_is_rejected() {
    // Tiering changes the home cluster's state shape, so flipping it on
    // (or off) across a resume cannot be a valid branch.
    let base = ExperimentConfig::small_demo(7).with_slots(48);
    let mut sim = Simulation::builder(&base).build().expect("config materialises");
    for _ in 0..10 {
        sim.step().expect("prefix shorter than the run");
    }
    let snap = sim.snapshot();
    drop(sim);

    let tiered = base.with_tiering(TieringConfig::default());
    let err = Simulation::builder(&tiered)
        .resume_from(&snap)
        .build()
        .err()
        .expect("tiering flip must be rejected");
    assert!(format!("{err:?}").contains("tiering"), "unexpected error: {err:?}");
}
