//! Telemetry contract tests for the step-wise simulation core.
//!
//! The JSONL trace is part of the repo's observable surface: downstream
//! tooling diffs trace files across commits, so the format must stay
//! byte-stable for a fixed seed. These tests pin that contract:
//!
//! * a committed golden file (`tests/golden/small_demo_trace.jsonl`) for
//!   the `small_demo` preset — regenerate with
//!   `GM_UPDATE_GOLDEN=1 cargo test --test telemetry`;
//! * same-seed runs must produce byte-identical traces;
//! * every record must conserve energy on both sides of the meter;
//! * attaching a `NullObserver` must not change the final report.

use std::io::Write;
use std::sync::{Arc, Mutex};

use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::observe::{JsonlTraceObserver, NullObserver};
use greenmatch::simulation::Simulation;

const GOLDEN_PATH: &str = "tests/golden/small_demo_trace.jsonl";

/// `io::Write` sink whose bytes remain reachable after the observer (and
/// the simulation that owns it) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run `cfg` to completion with a JSONL trace observer attached and
/// return the raw trace bytes.
fn trace_bytes(cfg: &ExperimentConfig) -> Vec<u8> {
    let buf = SharedBuf::default();
    Simulation::builder(cfg)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();
    buf.contents()
}

#[test]
fn trace_matches_committed_golden() {
    let cfg = ExperimentConfig::small_demo(42);
    let actual = trace_bytes(&cfg);

    if std::env::var_os("GM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden trace");
        return;
    }

    let golden = std::fs::read(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e} (regenerate with GM_UPDATE_GOLDEN=1)")
    });
    if actual != golden {
        // Find the first differing line for a readable failure message.
        let actual_s = String::from_utf8_lossy(&actual);
        let golden_s = String::from_utf8_lossy(&golden);
        for (i, (a, g)) in actual_s.lines().zip(golden_s.lines()).enumerate() {
            assert_eq!(a, g, "trace diverges from golden at line {}", i + 1);
        }
        panic!(
            "trace length changed: {} lines vs golden {} (regenerate with GM_UPDATE_GOLDEN=1 if intended)",
            actual_s.lines().count(),
            golden_s.lines().count()
        );
    }
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let cfg = ExperimentConfig::small_demo(7).with_slots(48);
    let first = trace_bytes(&cfg);
    let second = trace_bytes(&cfg);
    assert!(!first.is_empty(), "trace should contain records");
    assert_eq!(first, second, "same seed must reproduce the trace byte for byte");
}

#[test]
fn same_seed_traces_are_byte_identical_for_every_policy() {
    use greenmatch::policy::PolicyKind;

    let policies = [
        PolicyKind::AllOn,
        PolicyKind::PowerProportional,
        PolicyKind::Edf,
        PolicyKind::GreedyGreen,
        PolicyKind::GreenMatch { delay_fraction: 1.0 },
        PolicyKind::GreenMatch { delay_fraction: 0.3 },
        PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 12 },
        PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
    ];
    for policy in policies {
        let cfg = ExperimentConfig::small_demo(7).with_slots(48).with_policy(policy);
        let first = trace_bytes(&cfg);
        let second = trace_bytes(&cfg);
        assert!(!first.is_empty(), "{policy:?}: trace should contain records");
        assert_eq!(first, second, "{policy:?}: same seed must reproduce the trace byte for byte");
    }
}

#[test]
fn one_site_config_traces_match_flat_config_for_every_policy() {
    use greenmatch::policy::PolicyKind;

    // Spelling the single site out explicitly via `sites` must be pure
    // sugar over the flat fields: the degenerate one-site path produces a
    // byte-identical trace, for every policy.
    let policies = [
        PolicyKind::AllOn,
        PolicyKind::PowerProportional,
        PolicyKind::Edf,
        PolicyKind::GreedyGreen,
        PolicyKind::GreenMatch { delay_fraction: 1.0 },
        PolicyKind::GreenMatch { delay_fraction: 0.3 },
        PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 12 },
        PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
    ];
    for policy in policies {
        let flat = ExperimentConfig::small_demo(7).with_slots(48).with_policy(policy);
        let sited = flat.clone().with_sites(flat.site_configs());
        let a = trace_bytes(&flat);
        let b = trace_bytes(&sited);
        assert!(!a.is_empty(), "{policy:?}: trace should contain records");
        assert_eq!(a, b, "{policy:?}: explicit one-site config diverged from flat config");
    }
}

#[test]
fn warm_start_traces_match_cold_for_every_policy() {
    use greenmatch::policy::PolicyKind;

    // The incremental matcher's warm-start path (retained flow network,
    // re-priced arcs) must be *byte-identical* to rebuilding the network
    // from scratch every slot, for every policy — warm-starting is a pure
    // performance knob, never a schedule change.
    let policies = [
        PolicyKind::AllOn,
        PolicyKind::PowerProportional,
        PolicyKind::Edf,
        PolicyKind::GreedyGreen,
        PolicyKind::GreenMatch { delay_fraction: 1.0 },
        PolicyKind::GreenMatch { delay_fraction: 0.3 },
        PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 12 },
        PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
    ];
    for policy in policies {
        let warm = ExperimentConfig::small_demo(7).with_slots(48).with_policy(policy);
        let cold = warm.clone().with_matcher_warm_start(false);
        let a = trace_bytes(&warm);
        let b = trace_bytes(&cold);
        assert!(!a.is_empty(), "{policy:?}: trace should contain records");
        assert_eq!(a, b, "{policy:?}: warm-started matcher diverged from cold rebuilds");
    }
}

#[test]
fn warm_start_traces_match_cold_multi_site() {
    use greenmatch::policy::PolicyKind;

    // Same byte-identity contract on the multi-site path, where the
    // retained network spans site×slot bins and WAN-priced arcs.
    let base = ExperimentConfig::small_demo(7)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let mut sites = base.site_configs();
    let mut east = sites[0].clone();
    east.name = "east".into();
    east.utc_offset_hours = 8;
    sites.push(east);
    let warm = base.with_sites(sites).with_wan_cost(200);
    let cold = warm.clone().with_matcher_warm_start(false);
    let a = trace_bytes(&warm);
    let b = trace_bytes(&cold);
    assert!(!a.is_empty(), "trace should contain records");
    assert_eq!(a, b, "multi-site warm-started matcher diverged from cold rebuilds");
}

#[test]
fn multi_site_traces_are_deterministic() {
    use greenmatch::policy::PolicyKind;

    let base = ExperimentConfig::small_demo(7)
        .with_slots(48)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let mut sites = base.site_configs();
    let mut east = sites[0].clone();
    east.name = "east".into();
    east.utc_offset_hours = 8;
    sites.push(east);
    let cfg = base.with_sites(sites).with_wan_cost(200);

    let first = trace_bytes(&cfg);
    let second = trace_bytes(&cfg);
    assert!(!first.is_empty(), "trace should contain records");
    assert_eq!(first, second, "multi-site runs must be deterministic byte for byte");
}

/// Like [`trace_bytes`], but materialising the world through `cache`.
fn trace_bytes_cached(cfg: &ExperimentConfig, cache: &greenmatch::WorldCache) -> Vec<u8> {
    let buf = SharedBuf::default();
    Simulation::builder(cfg)
        .cache(cache)
        .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
        .build()
        .expect("config materialises")
        .run_to_end();
    buf.contents()
}

#[test]
fn warm_world_traces_match_cold_for_every_policy() {
    use greenmatch::policy::PolicyKind;
    use greenmatch::WorldCache;

    // A cache-hit (warm `Arc<World>`) run must emit a JSONL trace
    // byte-identical to a cold-materialized run, for every policy: world
    // sharing may not perturb RNG draw order or any per-run state.
    let policies = [
        PolicyKind::AllOn,
        PolicyKind::PowerProportional,
        PolicyKind::Edf,
        PolicyKind::GreedyGreen,
        PolicyKind::GreenMatch { delay_fraction: 1.0 },
        PolicyKind::GreenMatch { delay_fraction: 0.3 },
        PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 12 },
        PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
    ];
    let cache = WorldCache::new();
    for policy in policies {
        let cfg = ExperimentConfig::small_demo(7).with_slots(48).with_policy(policy);
        let cold = trace_bytes(&cfg);
        let first = trace_bytes_cached(&cfg, &cache);
        let warm = trace_bytes_cached(&cfg, &cache);
        assert!(!cold.is_empty(), "{policy:?}: trace should contain records");
        assert_eq!(first, cold, "{policy:?}: cache-miss run diverged from cold");
        assert_eq!(warm, cold, "{policy:?}: cache-hit run diverged from cold");
    }
    assert!(cache.hits() > 0, "second runs must have hit the cache");
}

#[test]
fn policy_variants_share_one_cached_world() {
    use greenmatch::policy::PolicyKind;
    use greenmatch::WorldCache;

    let cache = WorldCache::new();
    let a = ExperimentConfig::small_demo(7).with_slots(24);
    let b = a.clone().with_policy(PolicyKind::AllOn);
    let _ = Simulation::builder(&a).cache(&cache).build().expect("a materialises");
    assert_eq!(cache.misses(), 3, "first config builds workload, trace and layout");
    assert_eq!(cache.hits(), 0);
    let _ = Simulation::builder(&b).cache(&cache).build().expect("b materialises");
    assert_eq!(cache.misses(), 3, "policy change must rebuild nothing");
    assert_eq!(cache.hits(), 3, "all three components served from the cache");
}

#[test]
fn shared_scratch_across_runs_does_not_leak_state() {
    use greenmatch::SlotScratch;

    // Two back-to-back runs through ONE scratch must produce the same
    // trace as two fresh runs: the phase pipeline must fully re-clear its
    // buffers, never read stale contents.
    let cfg_a = ExperimentConfig::small_demo(7).with_slots(48);
    let cfg_b = ExperimentConfig::small_demo(11).with_slots(48);
    let fresh_a = trace_bytes(&cfg_a);
    let fresh_b = trace_bytes(&cfg_b);

    let mut scratch = SlotScratch::new();
    let mut shared = Vec::new();
    for cfg in [&cfg_a, &cfg_b] {
        let buf = SharedBuf::default();
        let mut sim = Simulation::builder(cfg)
            .scratch(&mut scratch)
            .observer(Box::new(JsonlTraceObserver::new(buf.clone())))
            .build()
            .expect("config materialises");
        while sim.step().is_some() {}
        let _ = sim.into_report();
        shared.push(buf.contents());
    }
    assert_eq!(shared[0], fresh_a, "shared scratch changed run A");
    assert_eq!(shared[1], fresh_b, "shared scratch changed run B");
}

#[test]
fn every_record_conserves_energy() {
    let cfg = ExperimentConfig::small_demo(99);
    let bytes = trace_bytes(&cfg);
    let text = String::from_utf8(bytes).expect("trace is UTF-8");

    let mut slots_seen = 0usize;
    for (i, line) in text.lines().enumerate() {
        let rec: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not JSON: {e}", i + 1));
        let f = |key: &str| -> f64 {
            rec.get(key)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("line {} missing numeric field {key:?}", i + 1))
        };

        assert_eq!(
            rec.get("slot").and_then(|v| v.as_u64()),
            Some(i as u64),
            "slots must be contiguous from 0"
        );

        // Consumption side: everything the cluster drew came from somewhere.
        let supplied = f("green_direct_wh") + f("battery_out_wh") + f("grid_wh");
        let load = f("load_wh");
        assert!(
            (supplied - load).abs() <= 1e-6 * load.max(1.0),
            "slot {i}: green_direct + battery_out + grid = {supplied} but load = {load}"
        );

        // Production side: every green Wh was used, stored, or curtailed.
        let produced = f("green_produced_wh");
        let disposed = f("green_direct_wh") + f("battery_in_wh") + f("curtailed_wh");
        assert!(
            (produced - disposed).abs() <= 1e-6 * produced.max(1.0),
            "slot {i}: produced {produced} Wh but accounted for {disposed} Wh"
        );

        // Battery state stays inside its physical envelope.
        let soc = f("battery_soc_frac");
        assert!((0.0..=1.0 + 1e-9).contains(&soc), "slot {i}: SoC fraction {soc} out of range");

        slots_seen += 1;
    }
    assert_eq!(slots_seen, cfg.slots, "one record per slot");
}

#[test]
fn null_observer_does_not_change_the_report() {
    let cfg = ExperimentConfig::small_demo(3).with_slots(72);
    let plain = run_experiment(&cfg);

    let observed = Simulation::builder(&cfg)
        .observer(Box::new(NullObserver))
        .build()
        .expect("config materialises")
        .run_to_end();

    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "NullObserver must be invisible to the report"
    );
}
